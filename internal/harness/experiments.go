package harness

import (
	"fmt"
	"io"

	"repro/internal/config"
	"repro/internal/cta"
	"repro/internal/kernels"
	"repro/internal/stats"
)

// markSampled flags a simulation-driven figure table when the sweep ran
// under interval/sampled simulation (Params.Sampling): every row gets a
// trailing "sampled" column so no paper figure silently mixes sampled and
// exact numbers. Static-analysis tables (occupancy, hardware config) never
// call it; exact sweeps leave the table untouched.
func markSampled(t *stats.Table, p Params) {
	if p.Sampling.Enabled() {
		t.MarkSampled(p.Sampling.String())
	}
}

func init() {
	register(tableConfig())
	register(tableBenchmarks())
	register(figLimiter())
	register(figTLP())
	register(figSpeedup())
	register(figIdealGap())
	register(figFullSwap())
	register(figSwapLatency())
	register(figVirtualCap())
	register(figRFSize())
	register(figScheduler())
	register(tableSwap())
	register(tableHardware())
}

// tableConfig reproduces the simulated-hardware configuration table.
func tableConfig() Experiment {
	return Experiment{
		ID:    "table1-config",
		Title: "Simulated GPU configuration",
		Paper: "GPGPU-Sim GTX 480 profile: 15 SMs, 48 warps/8 CTAs/1536 threads per SM, 128 KB registers, 48 KB shared memory",
		Run: func(p Params, w io.Writer) error {
			c := p.Config
			t := stats.NewTable("simulated hardware", "parameter", "value")
			t.Rowf("SMs", c.NumSMs)
			t.Rowf("warp size", c.WarpSize)
			t.Rowf("warp schedulers / SM", fmt.Sprintf("%d (%s)", c.NumSchedulers, c.Scheduler))
			t.Rowf("max CTAs / SM (scheduling)", c.MaxCTAsPerSM)
			t.Rowf("max warps / SM (scheduling)", c.MaxWarpsPerSM)
			t.Rowf("max threads / SM (scheduling)", c.MaxThreadsPerSM)
			t.Rowf("register file / SM (capacity)", fmt.Sprintf("%d KB", c.RegFileSize*4/1024))
			t.Rowf("shared memory / SM (capacity)", fmt.Sprintf("%d KB", c.SharedMemPerSM/1024))
			t.Rowf("L1D / SM", fmt.Sprintf("%d KB, %d-way, %d B lines, %d MSHRs",
				c.L1D.SizeBytes()/1024, c.L1D.Ways, c.L1D.LineSize, c.L1D.MSHRs))
			t.Rowf("L2 (total)", fmt.Sprintf("%d KB across %d partitions",
				c.L2.SizeBytes()*c.NumMemPartitions/1024, c.NumMemPartitions))
			t.Rowf("DRAM latency / service", fmt.Sprintf("%d cyc + %d cyc per 128 B burst",
				c.DRAMLatency, c.DRAMServiceCycles))
			t.Rowf("VT swap latency (out/in)", fmt.Sprintf("%d / %d cyc", c.VT.SwapOutLatency, c.VT.SwapInLatency))
			t.Rowf("VT context buffer / SM", fmt.Sprintf("%d KB", c.VT.ContextBufferBytes/1024))
			t.Fprint(w)
			return nil
		},
	}
}

// tableBenchmarks reproduces the benchmark-characteristics table with the
// binding occupancy limiter per workload.
func tableBenchmarks() Experiment {
	return Experiment{
		ID:    "table2-benchmarks",
		Title: "Benchmark characteristics and occupancy limiter",
		Paper: "motivation: concurrency in most general-purpose workloads is curtailed by the scheduling limit, not the capacity limit",
		Run: func(p Params, w io.Writer) error {
			t := stats.NewTable("workloads",
				"workload", "threads/CTA", "regs/thr", "shmem/CTA", "CTAs/SM", "capacity-CTAs", "limiter", "sched-limited")
			sched := 0
			for _, wl := range kernels.Suite(p.Scale) {
				o := cta.ComputeOccupancy(wl.Launch, &p.Config)
				if o.SchedulingLimited() {
					sched++
				}
				t.Rowf(wl.Name, wl.Launch.BlockDim.Size(), wl.Launch.Kernel.NumRegs,
					wl.Launch.Kernel.SMemBytes, o.CTAs, o.CapacityCTAs,
					o.Limiter.String(), fmt.Sprintf("%v", o.SchedulingLimited()))
			}
			t.Note("%d of %d workloads are scheduling-limited", sched, len(kernels.Names()))
			t.Fprint(w)
			return nil
		},
	}
}

// figLimiter reproduces the motivation figure: the fraction of
// capacity-supported thread-level parallelism the scheduling limit denies.
func figLimiter() Experiment {
	return Experiment{
		ID:    "fig-limiter",
		Title: "TLP lost to the scheduling limit (static analysis)",
		Paper: "scheduling structures strand large fractions of on-chip memory capacity",
		Run: func(p Params, w io.Writer) error {
			t := stats.NewTable("stranded parallelism",
				"workload", "warps(sched)", "warps(capacity)", "stranded")
			var fractions []float64
			for _, wl := range kernels.Suite(p.Scale) {
				o := cta.ComputeOccupancy(wl.Launch, &p.Config)
				ws := o.CTAs * o.Footprint.Warps
				wc := o.CapacityCTAs * o.Footprint.Warps
				if wc > p.Config.MaxWarpsPerSM*4 {
					wc = p.Config.MaxWarpsPerSM * 4 // context-buffer-scale bound for display
				}
				frac := 0.0
				if wc > ws {
					frac = 1 - float64(ws)/float64(wc)
				}
				fractions = append(fractions, frac)
				t.Rowf(wl.Name, ws, wc, fmt.Sprintf("%.0f%%", frac*100))
			}
			t.Note("mean stranded TLP: %.0f%%", stats.Mean(fractions)*100)
			t.Fprint(w)
			return nil
		},
	}
}

// figTLP reproduces the thread-level-parallelism figure: average active and
// resident warps per SM under each policy.
func figTLP() Experiment {
	return Experiment{
		ID:    "fig-tlp",
		Title: "Average active/resident warps per SM (baseline vs VT vs ideal)",
		Paper: "VT keeps capacity-limit-many CTAs resident while active CTAs respect the scheduling limit",
		Run: func(p Params, w io.Writer) error {
			pols := []config.Policy{config.PolicyBaseline, config.PolicyVT, config.PolicyIdeal}
			res, err := runMany(p, policyJobs(suiteNames(), pols))
			if err != nil {
				return err
			}
			t := stats.NewTable("warps per SM",
				"workload", "base-active", "vt-active", "vt-resident", "ideal-active")
			for _, n := range suiteNames() {
				b := res[key{n, "baseline"}]
				v := res[key{n, "vt"}]
				i := res[key{n, "ideal"}]
				t.Rowf(n, b.AvgActiveWarpsPerSM(), v.AvgActiveWarpsPerSM(),
					v.AvgResidentWarpsPerSM(), i.AvgActiveWarpsPerSM())
			}
			markSampled(t, p)
			t.Fprint(w)
			return nil
		},
	}
}

// figSpeedup reproduces the headline result: per-workload VT speedup over
// the baseline.
func figSpeedup() Experiment {
	return Experiment{
		ID:    "fig-speedup",
		Title: "VT speedup over baseline (headline result)",
		Paper: "VT improves performance by 23.9% on average [abstract]",
		Run: func(p Params, w io.Writer) error {
			pols := []config.Policy{config.PolicyBaseline, config.PolicyVT}
			res, err := runMany(p, policyJobs(suiteNames(), pols))
			if err != nil {
				return err
			}
			t := stats.NewTable("speedup", "workload", "base-IPC", "vt-IPC", "speedup", "swaps")
			var sp []float64
			for _, n := range suiteNames() {
				b := res[key{n, "baseline"}]
				v := res[key{n, "vt"}]
				s := float64(b.Cycles) / float64(v.Cycles)
				sp = append(sp, s)
				t.Rowf(n, b.IPC(), v.IPC(), s, v.VT.SwapsOut)
			}
			t.Note("average speedup: %s (arithmetic), %s (geometric); paper reports +23.9%% average",
				stats.Pct(stats.Mean(sp)), stats.Pct(stats.GeoMean(sp)))
			markSampled(t, p)
			t.Fprint(w)
			return nil
		},
	}
}

// figIdealGap reproduces the comparison against unbounded scheduling
// structures.
func figIdealGap() Experiment {
	return Experiment{
		ID:    "fig-ideal-gap",
		Title: "VT vs ideal (unbounded scheduling structures)",
		Paper: "VT approaches the performance of scaling the scheduling structures without their hardware cost",
		Run: func(p Params, w io.Writer) error {
			pols := []config.Policy{config.PolicyBaseline, config.PolicyVT, config.PolicyIdeal}
			res, err := runMany(p, policyJobs(suiteNames(), pols))
			if err != nil {
				return err
			}
			t := stats.NewTable("normalized to baseline", "workload", "vt", "ideal", "vt-capture")
			var caps []float64
			for _, n := range suiteNames() {
				b := float64(res[key{n, "baseline"}].Cycles)
				v := b / float64(res[key{n, "vt"}].Cycles)
				i := b / float64(res[key{n, "ideal"}].Cycles)
				// Capture is only meaningful where ideal actually gains.
				capture := "-"
				if i > 1.05 {
					c := (v - 1) / (i - 1)
					caps = append(caps, c)
					capture = fmt.Sprintf("%.0f%%", c*100)
				}
				t.Rowf(n, v, i, capture)
			}
			t.Note("mean capture of ideal's gain (where ideal gains >5%%): %.0f%%",
				stats.Mean(caps)*100)
			markSampled(t, p)
			t.Fprint(w)
			return nil
		},
	}
}

// figFullSwap reproduces the strawman comparison: swapping full contexts
// off-chip instead of keeping them resident.
func figFullSwap() Experiment {
	return Experiment{
		ID:    "fig-fullswap",
		Title: "VT vs off-chip context switching (FullSwap strawman)",
		Paper: "keeping both active and inactive CTAs within the capacity limit obviates saving/restoring large CTA state",
		Run: func(p Params, w io.Writer) error {
			pols := []config.Policy{config.PolicyBaseline, config.PolicyVT, config.PolicyFullSwap}
			res, err := runMany(p, policyJobs(suiteNames(), pols))
			if err != nil {
				return err
			}
			t := stats.NewTable("normalized to baseline", "workload", "vt", "fullswap")
			var vs, fs []float64
			for _, n := range suiteNames() {
				b := float64(res[key{n, "baseline"}].Cycles)
				v := b / float64(res[key{n, "vt"}].Cycles)
				f := b / float64(res[key{n, "fullswap"}].Cycles)
				vs = append(vs, v)
				fs = append(fs, f)
				t.Rowf(n, v, f)
			}
			t.Note("geomean: vt %s, fullswap %s", stats.Pct(stats.GeoMean(vs)), stats.Pct(stats.GeoMean(fs)))
			markSampled(t, p)
			t.Fprint(w)
			return nil
		},
	}
}

// figSwapLatency reproduces the swap-latency sensitivity sweep.
func figSwapLatency() Experiment {
	lats := []int{0, 8, 24, 64, 128, 256, 512}
	return Experiment{
		ID:    "fig-swaplat",
		Title: "Sensitivity to swap latency (sweep subset)",
		Paper: "VT's benefit relies on swaps costing only scheduling-state save/restore",
		Run: func(p Params, w io.Writer) error {
			var jobs []Job
			for _, n := range sweepNames() {
				jobs = append(jobs, Job{Workload: n, Variant: "baseline"})
				for _, l := range lats {
					l := l
					jobs = append(jobs, Job{
						Workload: n,
						Variant:  fmt.Sprintf("lat%d", l),
						Mutate: func(c *config.GPUConfig) {
							c.Policy = config.PolicyVT
							c.VT.SwapOutLatency = l
							c.VT.SwapInLatency = l
						},
					})
				}
			}
			res, err := runMany(p, jobs)
			if err != nil {
				return err
			}
			headers := []string{"workload"}
			for _, l := range lats {
				headers = append(headers, fmt.Sprintf("lat=%d", l))
			}
			t := stats.NewTable("VT speedup vs swap latency", headers...)
			perLat := make(map[int][]float64)
			for _, n := range sweepNames() {
				b := float64(res[key{n, "baseline"}].Cycles)
				row := []any{n}
				for _, l := range lats {
					s := b / float64(res[key{n, fmt.Sprintf("lat%d", l)}].Cycles)
					perLat[l] = append(perLat[l], s)
					row = append(row, s)
				}
				t.Rowf(row...)
			}
			row := []any{"geomean"}
			for _, l := range lats {
				row = append(row, stats.GeoMean(perLat[l]))
			}
			t.Rowf(row...)
			markSampled(t, p)
			t.Fprint(w)
			return nil
		},
	}
}

// figVirtualCap reproduces the virtual-CTA-budget sensitivity sweep.
func figVirtualCap() Experiment {
	caps := []int{8, 12, 16, 24, 32, 0} // 0 = capacity bound
	return Experiment{
		ID:    "fig-virtcap",
		Title: "Sensitivity to the virtual CTA budget (sweep subset)",
		Paper: "benefit grows with resident CTAs until capacity binds",
		Run: func(p Params, w io.Writer) error {
			var jobs []Job
			for _, n := range sweepNames() {
				jobs = append(jobs, Job{Workload: n, Variant: "baseline"})
				for _, cp := range caps {
					cp := cp
					jobs = append(jobs, Job{
						Workload: n,
						Variant:  fmt.Sprintf("cap%d", cp),
						Mutate: func(c *config.GPUConfig) {
							c.Policy = config.PolicyVT
							c.VT.MaxVirtualCTAsPerSM = cp
						},
					})
				}
			}
			res, err := runMany(p, jobs)
			if err != nil {
				return err
			}
			headers := []string{"workload"}
			for _, cp := range caps {
				if cp == 0 {
					headers = append(headers, "cap=inf")
				} else {
					headers = append(headers, fmt.Sprintf("cap=%d", cp))
				}
			}
			t := stats.NewTable("VT speedup vs virtual CTA budget", headers...)
			perCap := make(map[int][]float64)
			for _, n := range sweepNames() {
				b := float64(res[key{n, "baseline"}].Cycles)
				row := []any{n}
				for _, cp := range caps {
					s := b / float64(res[key{n, fmt.Sprintf("cap%d", cp)}].Cycles)
					perCap[cp] = append(perCap[cp], s)
					row = append(row, s)
				}
				t.Rowf(row...)
			}
			row := []any{"geomean"}
			for _, cp := range caps {
				row = append(row, stats.GeoMean(perCap[cp]))
			}
			t.Rowf(row...)
			markSampled(t, p)
			t.Fprint(w)
			return nil
		},
	}
}

// figRFSize reproduces the register-file-size sensitivity study.
func figRFSize() Experiment {
	sizes := []int{16384, 32768, 65536} // 64/128/256 KB
	return Experiment{
		ID:    "fig-rfsize",
		Title: "Sensitivity to register file size (sweep subset)",
		Paper: "a larger register file raises the capacity limit and VT's headroom",
		Run: func(p Params, w io.Writer) error {
			var jobs []Job
			for _, n := range sweepNames() {
				for _, sz := range sizes {
					sz := sz
					for _, pol := range []config.Policy{config.PolicyBaseline, config.PolicyVT} {
						pol := pol
						jobs = append(jobs, Job{
							Workload: n,
							Variant:  fmt.Sprintf("%s-rf%d", pol, sz),
							Mutate: func(c *config.GPUConfig) {
								c.Policy = pol
								c.RegFileSize = sz
							},
						})
					}
				}
			}
			res, err := runMany(p, jobs)
			if err != nil {
				return err
			}
			headers := []string{"workload"}
			for _, sz := range sizes {
				headers = append(headers, fmt.Sprintf("rf=%dKB", sz*4/1024))
			}
			t := stats.NewTable("VT speedup vs register file size", headers...)
			perSize := make(map[int][]float64)
			for _, n := range sweepNames() {
				row := []any{n}
				for _, sz := range sizes {
					b := float64(res[key{n, fmt.Sprintf("baseline-rf%d", sz)}].Cycles)
					s := b / float64(res[key{n, fmt.Sprintf("vt-rf%d", sz)}].Cycles)
					perSize[sz] = append(perSize[sz], s)
					row = append(row, s)
				}
				t.Rowf(row...)
			}
			row := []any{"geomean"}
			for _, sz := range sizes {
				row = append(row, stats.GeoMean(perSize[sz]))
			}
			t.Rowf(row...)
			markSampled(t, p)
			t.Fprint(w)
			return nil
		},
	}
}

// figScheduler reproduces the warp-scheduler interaction study.
func figScheduler() Experiment {
	return Experiment{
		ID:    "fig-sched",
		Title: "Interaction with the warp scheduler (GTO vs LRR)",
		Paper: "VT's gains are not an artifact of one warp scheduling policy",
		Run: func(p Params, w io.Writer) error {
			var jobs []Job
			for _, n := range sweepNames() {
				for _, sk := range []config.SchedulerKind{config.SchedGTO, config.SchedLRR} {
					sk := sk
					for _, pol := range []config.Policy{config.PolicyBaseline, config.PolicyVT} {
						pol := pol
						jobs = append(jobs, Job{
							Workload: n,
							Variant:  fmt.Sprintf("%s-%s", pol, sk),
							Mutate: func(c *config.GPUConfig) {
								c.Policy = pol
								c.Scheduler = sk
							},
						})
					}
				}
			}
			res, err := runMany(p, jobs)
			if err != nil {
				return err
			}
			t := stats.NewTable("VT speedup by scheduler", "workload", "gto", "lrr")
			var g, l []float64
			for _, n := range sweepNames() {
				sg := float64(res[key{n, "baseline-gto"}].Cycles) / float64(res[key{n, "vt-gto"}].Cycles)
				sl := float64(res[key{n, "baseline-lrr"}].Cycles) / float64(res[key{n, "vt-lrr"}].Cycles)
				g = append(g, sg)
				l = append(l, sl)
				t.Rowf(n, sg, sl)
			}
			t.Note("geomean: gto %s, lrr %s", stats.Pct(stats.GeoMean(g)), stats.Pct(stats.GeoMean(l)))
			markSampled(t, p)
			t.Fprint(w)
			return nil
		},
	}
}

// tableSwap reproduces the swap-behaviour statistics table.
func tableSwap() Experiment {
	return Experiment{
		ID:    "table-swap",
		Title: "VT swap behaviour",
		Paper: "swaps are frequent but cheap; context buffer stays small",
		Run: func(p Params, w io.Writer) error {
			res, err := runMany(p, policyJobs(suiteNames(), []config.Policy{config.PolicyVT}))
			if err != nil {
				return err
			}
			t := stats.NewTable("swap statistics",
				"workload", "swaps-out", "swaps-in", "fresh", "stall-cyc", "ctx-peak(B)", "max-resident")
			for _, n := range suiteNames() {
				v := res[key{n, "vt"}]
				t.Rowf(n, v.VT.SwapsOut, v.VT.SwapsIn, v.VT.FreshActivates,
					v.VT.SwapStallCycles, v.VT.ContextPeak, v.VT.MaxResident)
			}
			markSampled(t, p)
			t.Fprint(w)
			return nil
		},
	}
}

// tableHardware reproduces the hardware-overhead estimate.
func tableHardware() Experiment {
	return Experiment{
		ID:    "table-hw",
		Title: "VT hardware overhead estimate (static)",
		Paper: "VT needs only a small context buffer plus CTA state bits, far below scaled scheduling structures",
		Run: func(p Params, w io.Writer) error {
			c := p.Config
			t := stats.NewTable("per-SM overhead", "component", "bytes")
			perWarpCtx := 4 + 20 + 64 + 4 // PC + depth-1 stack + scoreboard + flags
			t.Rowf("context buffer (configured)", c.VT.ContextBufferBytes)
			t.Rowf("warp context (depth-1 stack)", perWarpCtx)
			t.Rowf("inactive 2-warp CTAs supported", c.VT.ContextBufferBytes/(2*perWarpCtx))
			t.Rowf("inactive 8-warp CTAs supported", c.VT.ContextBufferBytes/(8*perWarpCtx))
			t.Rowf("CTA state table (64 x 8 B)", 64*8)
			perSM := c.VT.ContextBufferBytes + 64*8
			t.Rowf("total per SM", perSM)
			t.Rowf("total per GPU", perSM*c.NumSMs)
			t.Note("compare: doubling warp slots replicates %d SIMT stacks + PCs per SM", c.MaxWarpsPerSM)
			t.Fprint(w)
			return nil
		},
	}
}
