package harness

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/config"
	"repro/internal/faultinject"
	"repro/internal/sweepobs"
)

// TestSweepTraceEndToEnd is the observability acceptance run: a mirrored,
// prefix-forked swap-latency sweep with one injected safe-mode retry must
// produce a span dump that (a) covers the fork lineage and the store's
// WAL phases, (b) survives the coverage and critical-path invariants of
// sweepobs.Analyze, and (c) round-trips through the result store as a
// vtart- artifact.
func TestSweepTraceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	ResetMetrics()
	defer ResetMetrics()

	dir, mirror := t.TempDir(), t.TempDir()
	tr := sweepobs.New()
	p := forkTestParams()
	p.Checkpoint = true
	p.CacheDir = dir
	p.MirrorDir = mirror
	p.Trace = tr
	p.Monitor = NewMonitor()
	// One deterministic first-attempt panic: the nw/vt singleton trips the
	// supervisor, retries in safe mode, and finishes degraded.
	p.Inject = &faultinject.Spec{Workload: "nw", Variant: "vt", Cycle: 100,
		Kind: faultinject.PanicOnce}

	jobs := swapLatJobs("pathfinder", []int{0, 64, 256})
	jobs = append(jobs, Job{
		Workload: "nw",
		Variant:  "vt",
		Mutate:   func(c *config.GPUConfig) { c.Policy = config.PolicyVT },
	})
	if _, err := runMany(p, jobs); err != nil {
		t.Fatal(err)
	}

	d := tr.Dump()
	if d == nil || len(d.Spans) == 0 {
		t.Fatal("traced sweep produced an empty dump")
	}
	if d.Workers < 1 || d.Workers > 2 {
		t.Errorf("workers high-water = %d, want 1..2", d.Workers)
	}

	kinds := map[string]int{}
	forked := 0
	for _, s := range d.Spans {
		kinds[s.Kind]++
		if s.Kind == "execute" && s.Attrs["forked_from"] != "" {
			forked++
			if s.Attrs["resume_cycle"] == "" {
				t.Errorf("forked execute span missing resume_cycle: %+v", s.Attrs)
			}
		}
	}
	if kinds["plan"] != 1 {
		t.Errorf("plan spans = %d, want 1", kinds["plan"])
	}
	if kinds["job"] != len(jobs) {
		t.Errorf("job spans = %d, want %d", kinds["job"], len(jobs))
	}
	// 3 sweep points + the singleton, plus the injected job's safe-mode
	// retry attempt.
	if kinds["execute"] < len(jobs)+1 {
		t.Errorf("execute spans = %d, want >= %d", kinds["execute"], len(jobs)+1)
	}
	if forked != 2 {
		t.Errorf("forked execute spans = %d, want 2 (donor plus two forks)", forked)
	}
	if kinds["fork.capture"] == 0 {
		t.Error("donor emitted no fork.capture event")
	}
	if kinds["fork.ckstore"] != 1 {
		t.Errorf("fork.ckstore spans = %d, want 1", kinds["fork.ckstore"])
	}
	if kinds["store.get"] == 0 {
		t.Error("no store.get lookup spans recorded")
	}
	if kinds["store.tx"] == 0 {
		t.Error("no store.tx spans recorded")
	}
	for _, ph := range []string{"store.stage", "store.commit", "store.apply", "store.replicate"} {
		if kinds[ph] == 0 {
			t.Errorf("no %s WAL-phase spans (mirrored store)", ph)
		}
	}
	if kinds["supervisor.panic"] != 1 || kinds["supervisor.retry"] != 1 {
		t.Errorf("supervisor events: %d panics, %d retries, want 1 each",
			kinds["supervisor.panic"], kinds["supervisor.retry"])
	}

	// Critical-path analysis: spans must cover (almost all of) the wall
	// clock and the path must tile it exactly.
	a := sweepobs.Analyze(d)
	if a == nil {
		t.Fatal("Analyze returned nil for a populated dump")
	}
	if a.Coverage < 0.95 {
		t.Errorf("span coverage = %.3f, want >= 0.95", a.Coverage)
	}
	var pathNS int64
	for _, s := range a.Path {
		pathNS += s.DurNS
	}
	if pathNS != d.WallNS {
		t.Errorf("critical path sums to %d ns, wall is %d ns", pathNS, d.WallNS)
	}
	stages := map[string]bool{}
	for _, b := range a.Breakdown {
		stages[b.Stage] = true
	}
	if !stages["execute"] {
		t.Errorf("breakdown missing execute stage: %+v", a.Breakdown)
	}

	// Persist through the store (both replicas), then read back cold.
	if err := PersistSweepTrace(p, d); err != nil {
		t.Fatal(err)
	}
	for _, root := range []string{dir, mirror} {
		if _, err := os.Stat(filepath.Join(root, "vtart-sweeptrace.json")); err != nil {
			t.Errorf("persisted trace missing in %s: %v", root, err)
		}
	}
	ResetMetrics() // close the sweep's store handles before reopening
	got, err := LoadSweepTrace(dir, mirror)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != sweepobs.DumpSchemaVersion {
		t.Errorf("schema = %d, want %d", got.SchemaVersion, sweepobs.DumpSchemaVersion)
	}
	if len(got.Spans) != len(d.Spans) || got.WallNS != d.WallNS {
		t.Errorf("round-trip mismatch: %d spans wall %d, want %d spans wall %d",
			len(got.Spans), got.WallNS, len(d.Spans), d.WallNS)
	}
}
