// Package harness defines the reproduction experiments: one named entry
// per table and figure of the paper's evaluation, each of which runs the
// required simulations (in parallel) and prints the same rows/series the
// paper reports. cmd/vtbench drives it; bench_test.go wraps every entry in
// a testing.B benchmark.
package harness

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/kernels"
)

// Params configures a harness run.
type Params struct {
	// Scale multiplies every workload's grid size; 1 is the evaluation
	// size used in EXPERIMENTS.md.
	Scale int
	// Config is the base hardware model (the paper's GTX 480 profile).
	Config config.GPUConfig
	// Workers bounds concurrent simulations; <=0 means GOMAXPROCS.
	Workers int
	// Dilute divides every grid size by this factor (minimum 8 CTAs);
	// used by tests to run experiments quickly. <=1 means full size.
	Dilute int
	// CacheDir, when non-empty, persists memoized run results on disk
	// keyed by the same content fingerprint as the in-memory cache, so
	// repeated invocations (profiling, bench re-runs, CI) skip
	// already-simulated points. See diskcache.go.
	CacheDir string
}

// DefaultParams returns the evaluation defaults.
func DefaultParams() Params {
	return Params{Scale: 1, Config: config.GTX480()}
}

func (p Params) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the stable name used by cmd/vtbench and bench_test.go.
	ID string
	// Title describes what is reproduced.
	Title string
	// Paper states the paper-side expectation being tested.
	Paper string
	// Run executes the experiment and writes its table(s).
	Run func(p Params, w io.Writer) error
}

var experiments []Experiment

func register(e Experiment) { experiments = append(experiments, e) }

// Experiments returns all experiments in registration (paper) order.
func Experiments() []Experiment {
	out := make([]Experiment, len(experiments))
	copy(out, experiments)
	return out
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	for _, e := range experiments {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(experiments))
	for _, e := range experiments {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (known: %v)", id, ids)
}

// RunAll executes every experiment in order.
func RunAll(p Params, w io.Writer) error {
	for _, e := range experiments {
		fmt.Fprintf(w, "### %s — %s\n", e.ID, e.Title)
		if e.Paper != "" {
			fmt.Fprintf(w, "paper: %s\n\n", e.Paper)
		}
		if err := RunOne(e, p, w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// labelCtx carries the pprof labels of the experiment currently running,
// so runMany can stack (workload, variant) labels on top of it.
// Experiments run one at a time, so a single slot suffices.
var (
	labelMu  sync.Mutex
	labelCtx = context.Background()
)

func swapLabelCtx(ctx context.Context) context.Context {
	labelMu.Lock()
	defer labelMu.Unlock()
	old := labelCtx
	labelCtx = ctx
	return old
}

func currentLabelCtx() context.Context {
	labelMu.Lock()
	defer labelMu.Unlock()
	return labelCtx
}

// RunOne executes a single experiment with a pprof "experiment" label
// attached, so CPU profiles segment by figure/table as well as by the
// per-run (workload, variant) labels runMany adds.
func RunOne(e Experiment, p Params, w io.Writer) error {
	var err error
	pprof.Do(context.Background(), pprof.Labels("experiment", e.ID),
		func(ctx context.Context) {
			old := swapLabelCtx(ctx)
			defer swapLabelCtx(old)
			err = e.Run(p, w)
		})
	return err
}

// job is one simulation request.
type job struct {
	workload string
	variant  string // distinguishes sweep points; "" for plain runs
	mutate   func(*config.GPUConfig)
}

// key identifies a completed run.
type key struct {
	Workload string
	Variant  string
}

// runMany executes all jobs with bounded parallelism and returns results
// keyed by (workload, variant). Repeated simulation points are served
// from the memo cache (see memo.go). Any simulation error aborts the
// batch. Each run carries pprof labels so CPU profiles attribute samples
// to the (workload, variant) that burned them.
func runMany(p Params, jobs []job) (map[key]*gpu.Result, error) {
	results := make(map[key]*gpu.Result, len(jobs))
	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, p.workers())
	var wg sync.WaitGroup
	for _, j := range jobs {
		// Take the semaphore slot before spawning, so at most `workers`
		// goroutines exist at a time (a 590-job RunAll used to park
		// hundreds of them on this channel).
		sem <- struct{}{}
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()
			var res *gpu.Result
			var err error
			labels := pprof.Labels("workload", j.workload, "variant", j.variant)
			pprof.Do(currentLabelCtx(), labels, func(context.Context) {
				res, err = memoRun(p, j)
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("%s/%s: %w", j.workload, j.variant, err)
				}
				return
			}
			results[key{j.workload, j.variant}] = res
		}(j)
	}
	wg.Wait()
	return results, firstErr
}

// policyJobs builds one job per (workload, policy) pair.
func policyJobs(names []string, policies []config.Policy) []job {
	var jobs []job
	for _, n := range names {
		for _, p := range policies {
			p := p
			jobs = append(jobs, job{
				workload: n,
				variant:  p.String(),
				mutate:   func(c *config.GPUConfig) { c.Policy = p },
			})
		}
	}
	return jobs
}

// suiteNames returns every workload name.
func suiteNames() []string { return kernels.Names() }

// sweepNames is the focused subset used by the parameter sweeps: the five
// scheduling-limited gainers plus one capacity-limited control, chosen to
// keep sweep run time tractable while covering both regimes.
func sweepNames() []string {
	return []string{"bfs", "spmv", "pathfinder", "lud", "nw", "srad"}
}
