// Package harness defines the reproduction experiments: one named entry
// per table and figure of the paper's evaluation, each of which runs the
// required simulations (in parallel) and prints the same rows/series the
// paper reports. cmd/vtbench drives it; bench_test.go wraps every entry in
// a testing.B benchmark.
package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/faultinject"
	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/sweepobs"
)

// Params configures a harness run.
type Params struct {
	// Scale multiplies every workload's grid size; 1 is the evaluation
	// size used in EXPERIMENTS.md.
	Scale int
	// Config is the base hardware model (the paper's GTX 480 profile).
	Config config.GPUConfig
	// Workers bounds concurrent simulations; <=0 means GOMAXPROCS.
	Workers int
	// Dilute divides every grid size by this factor (minimum 8 CTAs);
	// used by tests to run experiments quickly. <=1 means full size.
	Dilute int
	// CacheDir, when non-empty, persists memoized run results on disk
	// keyed by the same content fingerprint as the in-memory cache, so
	// repeated invocations (profiling, bench re-runs, CI) skip
	// already-simulated points. See diskcache.go. With Checkpoint set it
	// also persists prefix checkpoints, so forked sweeps resume across
	// processes. The directory is managed by the transactional result
	// store (internal/resultstore): results, checkpoints, and journal
	// lines commit atomically, with end-to-end checksums; directories
	// written by pre-store builds remain readable.
	CacheDir string
	// MirrorDir, when non-empty (requires CacheDir), attaches a replica
	// directory: every store transaction applies to both sides, corrupt
	// primary objects heal from the mirror on read, and
	// resultstore.Repair restores either side bit-identically from the
	// other.
	MirrorDir string
	// StoreFault, when non-nil, intercepts every result-store filesystem
	// operation with an injected storage fault (crash drills and
	// kill-point tests; see faultinject.StoreSpec). Nil in normal
	// operation.
	StoreFault *faultinject.StoreHook
	// Checkpoint enables prefix-forked sweeps: jobs that differ only in
	// parameters the simulation consumes late (the VT swap latencies)
	// share their common prefix through a checkpoint instead of each
	// re-simulating it. Results are bit-identical either way; see
	// fork.go.
	Checkpoint bool
	// ForkCycle, when positive, pins the donor's capture to the first
	// simulated cycle at or past this value instead of the adaptive
	// periodic cadence. Zero (the default) lets the donor capture
	// periodically while the fork guard holds and forks from the last
	// guarded checkpoint.
	ForkCycle int64

	// Supervision (see supervisor.go).

	// FailDir, when non-empty, receives one JSON repro bundle per run
	// that fails after the retry ladder, instead of the failure aborting
	// the sweep.
	FailDir string
	// RunTimeout bounds each simulation's wall-clock time; a run past the
	// deadline aborts with a full diagnostic. Zero disables the bound.
	RunTimeout time.Duration
	// CheckInvariants runs every simulation with the gpu conservation-
	// invariant checker enabled (see gpu.Options.CheckInvariants).
	CheckInvariants bool
	// Journal, when non-nil, records every executed run's outcome in the
	// append-only completion journal, making the sweep resumable (see
	// journal.go).
	Journal *Journal
	// Resume marks this sweep as resuming a journaled one: jobs the
	// journal recorded as failed are counted in RunMetrics.ResumedFailed
	// when they re-execute.
	Resume bool
	// Inject installs a deterministic fault into the matching run (tests
	// and the CI supervisor drill). Nil in normal operation.
	Inject *faultinject.Spec
	// Telemetry attaches a telemetry collector to every executed
	// simulation (see internal/telemetry) and folds its window/span
	// totals into RunMetrics. The collector is a pure observer, so
	// results — and therefore the memo/disk-cache fingerprints — are
	// unchanged; cache hits skip simulation and record no telemetry.
	Telemetry bool
	// Sampling runs every simulation in interval/sampled mode (see
	// gpu.SamplingOptions): detailed windows alternate with functional
	// fast-forward spans and the cycle count is extrapolated within the
	// run's reported error bound. Sampled results are approximations, so
	// the sampling configuration is part of the memo/disk-cache
	// fingerprint and of the journal header — a sampled sweep never
	// poisons an exact cache or resumes an exact journal. Incompatible
	// with Checkpoint and CheckInvariants (gpu.Run rejects the
	// combination); fault-injected runs, which force the invariant
	// checker, execute exactly. The zero value (the default) runs fully
	// detailed.
	Sampling gpu.SamplingOptions

	// Observability (see internal/sweepobs and monitor.go).

	// Trace, when non-nil, records a sweep-lifecycle span tree: every
	// job emits plan → store lookup → fork → execute → store-tx spans
	// plus supervisor events. Nil (the default) disables tracing; every
	// tracer hook is a nil-receiver no-op, so the off path costs a nil
	// check (the CI overhead gate's contract).
	Trace *sweepobs.Tracer
	// Monitor receives live job begin/finish bookkeeping and serves the
	// -monitor endpoints. Nil uses the process-wide DefaultMonitor,
	// preserving the old package-global behavior.
	Monitor *Monitor

	// Batch pipeline overrides (see the Scheduler/Executor/ResultSink
	// interfaces below). Nil selects the in-process defaults.

	// Scheduler plans each batch before execution; nil uses the
	// prefix-fork scheduler (forkPlan grouping, a no-op without
	// Checkpoint).
	Scheduler Scheduler
	// Executor produces each planned job's Result; nil executes
	// in-process through the memoized, supervised path. The sweep
	// fabric (internal/fabric) installs an executor that dispatches
	// jobs to a remote worker fleet instead.
	Executor Executor
	// Ctx, when non-nil, cancels the sweep's dispatch loop: on
	// cancellation RunJobs stops starting jobs (the remainder fail with
	// the context error) while in-flight jobs drain to completion, and
	// store retries abandon their backoff sleeps. Nil never cancels.
	Ctx context.Context
	// OnOutcome, when non-nil, observes every supervised run's
	// completion-log entry as it is recorded (res is nil for failures).
	// The fabric worker uses it to stream outcomes back to the
	// coordinator's distributed completion log. Must be safe for
	// concurrent use.
	OnOutcome func(e JournalEntry, res *gpu.Result)

	// span is the current parent span, threaded through the by-value
	// Params copies as execution descends (experiment → job → attempt).
	span sweepobs.SpanID
}

// DefaultParams returns the evaluation defaults.
func DefaultParams() Params {
	return Params{Scale: 1, Config: config.GTX480()}
}

// maxSweepWorkers bounds the per-batch simulation parallelism: beyond
// it the semaphore buffer and per-job goroutine stacks cost more than
// any plausible machine can use. Scale past one machine comes from the
// sweep fabric, not from wider in-process fan-out.
const maxSweepWorkers = 1024

// resolveWorkers clamps a requested concurrent-simulation count to
// [1, maxSweepWorkers]; n <= 0 selects GOMAXPROCS.
func resolveWorkers(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	if n > maxSweepWorkers {
		n = maxSweepWorkers
	}
	return n
}

// ResolveWorkers is resolveWorkers for callers outside the package
// (the fabric worker sizes its lease slots with the same rule).
func ResolveWorkers(n int) int { return resolveWorkers(n) }

func (p Params) workers() int { return resolveWorkers(p.Workers) }

// scheduler resolves the batch scheduler (default: prefix forking).
func (p Params) scheduler() Scheduler {
	if p.Scheduler != nil {
		return p.Scheduler
	}
	return prefixScheduler{}
}

// executor resolves the job executor (default: in-process).
func (p Params) executor() Executor {
	if p.Executor != nil {
		return p.Executor
	}
	return localExecutor{}
}

// ctx resolves the sweep context (default: never canceled).
func (p Params) ctx() context.Context {
	if p.Ctx != nil {
		return p.Ctx
	}
	return context.Background()
}

// Span exposes the current parent span to out-of-package Executor
// implementations, so fabric dispatch spans nest under the job span
// exactly like local execute spans do.
func (p Params) Span() sweepobs.SpanID { return p.span }

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the stable name used by cmd/vtbench and bench_test.go.
	ID string
	// Title describes what is reproduced.
	Title string
	// Paper states the paper-side expectation being tested.
	Paper string
	// Run executes the experiment and writes its table(s).
	Run func(p Params, w io.Writer) error
}

var experiments []Experiment

func register(e Experiment) { experiments = append(experiments, e) }

// Experiments returns all experiments in registration (paper) order.
func Experiments() []Experiment {
	out := make([]Experiment, len(experiments))
	copy(out, experiments)
	return out
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	for _, e := range experiments {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(experiments))
	for _, e := range experiments {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (known: %v)", id, ids)
}

// RunAll executes every experiment in order. A failing experiment no
// longer aborts the sweep: the failure is reported inline, the remaining
// experiments run, and the joined error is returned at the end (the
// supervisor has already written any repro bundles by then).
func RunAll(p Params, w io.Writer) error {
	var errs []error
	for _, e := range experiments {
		fmt.Fprintf(w, "### %s — %s\n", e.ID, e.Title)
		if e.Paper != "" {
			fmt.Fprintf(w, "paper: %s\n\n", e.Paper)
		}
		if err := RunOne(e, p, w); err != nil {
			fmt.Fprintf(w, "EXPERIMENT FAILED %s: %v\n\n", e.ID, err)
			errs = append(errs, fmt.Errorf("%s: %w", e.ID, err))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("harness: %d experiment(s) failed: %w", len(errs), errors.Join(errs...))
	}
	return nil
}

// labelCtx carries the pprof labels of the experiment currently running,
// so runMany can stack (workload, variant) labels on top of it.
// Experiments run one at a time, so a single slot suffices.
var (
	labelMu  sync.Mutex
	labelCtx = context.Background()
)

func swapLabelCtx(ctx context.Context) context.Context {
	labelMu.Lock()
	defer labelMu.Unlock()
	old := labelCtx
	labelCtx = ctx
	return old
}

func currentLabelCtx() context.Context {
	labelMu.Lock()
	defer labelMu.Unlock()
	return labelCtx
}

// RunOne executes a single experiment with a pprof "experiment" label
// attached, so CPU profiles segment by figure/table as well as by the
// per-run (workload, variant) labels runMany adds.
func RunOne(e Experiment, p Params, w io.Writer) error {
	var err error
	eid := p.Trace.Begin(p.span, "experiment", e.ID, "")
	p.span = eid
	pprof.Do(context.Background(), pprof.Labels("experiment", e.ID),
		func(ctx context.Context) {
			old := swapLabelCtx(ctx)
			defer swapLabelCtx(old)
			err = e.Run(p, w)
		})
	if err != nil {
		p.Trace.SetAttr(eid, "error", "true")
	}
	p.Trace.End(eid)
	return err
}

// Job is one simulation request: a named workload executed under a
// (possibly mutated) copy of the sweep's base config.
type Job struct {
	Workload string
	Variant  string // distinguishes sweep points; "" for plain runs
	// Mutate derives the job's hardware config from the sweep's base
	// config; nil runs the base config unchanged.
	Mutate func(*config.GPUConfig)
	// PrefixFP, when non-empty, marks the job as part of a prefix-fork
	// group (set by the scheduler; see fork.go).
	PrefixFP string
}

// ConfigFor resolves the job's hardware config against p's base config.
func (j Job) ConfigFor(p Params) config.GPUConfig {
	cfg := p.Config
	if j.Mutate != nil {
		j.Mutate(&cfg)
	}
	return cfg
}

// The batch pipeline is split into three replaceable stages, so the
// in-process path and the distributed sweep fabric (internal/fabric)
// share one execution skeleton: the Scheduler turns a raw batch into a
// plan (ordering plus prefix-fork grouping), the Executor produces each
// planned job's Result — in-process (memoized, supervised) by default,
// or by dispatching to a remote worker fleet — and the ResultSink
// collects completions as they land.

// Scheduler plans a batch of jobs before execution. Implementations
// must preserve the batch's (workload, variant) points; they may
// reorder or annotate them.
type Scheduler interface {
	Plan(p Params, jobs []Job) []Job
}

// Executor produces one planned job's Result. Implementations must be
// safe for concurrent use; the Params value passed to Execute carries
// the job's span context and must be threaded into any harness calls.
type Executor interface {
	Execute(p Params, j Job) (*gpu.Result, error)
}

// ResultSink receives completions as jobs finish, in completion order.
// Implementations must be safe for concurrent use. Failed jobs are not
// delivered; their errors surface through RunJobs' return value.
type ResultSink interface {
	Collect(j Job, res *gpu.Result)
}

// prefixScheduler is the default Scheduler: forkPlan prefix grouping
// (a no-op unless Params.Checkpoint is set).
type prefixScheduler struct{}

func (prefixScheduler) Plan(p Params, jobs []Job) []Job { return forkPlan(p, jobs) }

// localExecutor is the default Executor: memoized, supervised,
// in-process execution (see memo.go and supervisor.go).
type localExecutor struct{}

func (localExecutor) Execute(p Params, j Job) (*gpu.Result, error) { return memoRun(p, j) }

// key identifies a completed run.
type key struct {
	Workload string
	Variant  string
}

// mapSink collects results keyed by (workload, variant).
type mapSink struct {
	mu      sync.Mutex
	results map[key]*gpu.Result
}

func (s *mapSink) Collect(j Job, res *gpu.Result) {
	s.mu.Lock()
	s.results[key{j.Workload, j.Variant}] = res
	s.mu.Unlock()
}

// runMany executes all jobs with bounded parallelism and returns results
// keyed by (workload, variant): RunJobs with a map sink.
func runMany(p Params, jobs []Job) (map[key]*gpu.Result, error) {
	sink := &mapSink{results: make(map[key]*gpu.Result, len(jobs))}
	err := RunJobs(p, jobs, sink)
	return sink.results, err
}

// RunJobs plans a batch with the Params' scheduler, executes it with
// the Params' executor under bounded parallelism, and streams
// successful completions into sink. Repeated simulation points are
// served from the memo cache (see memo.go). Every job runs even when
// earlier ones fail — the supervisor turns failures into repro bundles
// — and the per-job errors are joined (in job order) into the returned
// error, so a partially failed batch still surfaces as a failure to its
// experiment. A canceled Params.Ctx stops dispatching: jobs not yet
// started fail with the context error while in-flight jobs drain to
// completion. Each run carries pprof labels so CPU profiles attribute
// samples to the (workload, variant) that burned them.
func RunJobs(p Params, jobs []Job, sink ResultSink) error {
	plan := p.Trace.Begin(p.span, "plan", "", "")
	jobs = p.scheduler().Plan(p, jobs)
	p.Trace.End(plan)
	mon := p.monitor()
	exec := p.executor()
	ctx := p.ctx()
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, p.workers())
	var wg sync.WaitGroup
	for i, j := range jobs {
		// Take the semaphore slot before spawning, so at most `workers`
		// goroutines exist at a time (a 590-job RunAll used to park
		// hundreds of them on this channel). The job span starts after
		// the slot is taken, so tracer worker slots mirror real
		// concurrency. A canceled sweep context wins the race: remaining
		// jobs are skipped with the context error while already-started
		// jobs drain. The non-blocking check first gives cancellation
		// strict priority — the two-way select alone would pick randomly
		// when a slot and the cancellation are both ready.
		select {
		case <-ctx.Done():
			errs[i] = fmt.Errorf("%s/%s: %w", j.Workload, j.Variant, ctx.Err())
			continue
		default:
		}
		select {
		case <-ctx.Done():
			errs[i] = fmt.Errorf("%s/%s: %w", j.Workload, j.Variant, ctx.Err())
			continue
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(i int, j Job) {
			defer wg.Done()
			defer func() { <-sem }()
			var res *gpu.Result
			var err error
			labels := pprof.Labels("workload", j.Workload, "variant", j.Variant)
			pprof.Do(currentLabelCtx(), labels, func(context.Context) {
				jid := p.Trace.BeginJob(p.span, j.Workload, j.Variant)
				mon.beginJob(j)
				defer mon.endJob(j)
				defer p.Trace.EndJob(jid)
				jp := p
				jp.span = jid
				res, err = exec.Execute(jp, j)
			})
			if err != nil {
				errs[i] = fmt.Errorf("%s/%s: %w", j.Workload, j.Variant, err)
				return
			}
			sink.Collect(j, res)
		}(i, j)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// policyJobs builds one job per (workload, policy) pair.
func policyJobs(names []string, policies []config.Policy) []Job {
	var jobs []Job
	for _, n := range names {
		for _, p := range policies {
			p := p
			jobs = append(jobs, Job{
				Workload: n,
				Variant:  p.String(),
				Mutate:   func(c *config.GPUConfig) { c.Policy = p },
			})
		}
	}
	return jobs
}

// suiteNames returns every workload name.
func suiteNames() []string { return kernels.Names() }

// sweepNames is the focused subset used by the parameter sweeps: the five
// scheduling-limited gainers plus one capacity-limited control, chosen to
// keep sweep run time tractable while covering both regimes.
func sweepNames() []string {
	return []string{"bfs", "spmv", "pathfinder", "lud", "nw", "srad"}
}
