// Package harness defines the reproduction experiments: one named entry
// per table and figure of the paper's evaluation, each of which runs the
// required simulations (in parallel) and prints the same rows/series the
// paper reports. cmd/vtbench drives it; bench_test.go wraps every entry in
// a testing.B benchmark.
package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/faultinject"
	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/sweepobs"
)

// Params configures a harness run.
type Params struct {
	// Scale multiplies every workload's grid size; 1 is the evaluation
	// size used in EXPERIMENTS.md.
	Scale int
	// Config is the base hardware model (the paper's GTX 480 profile).
	Config config.GPUConfig
	// Workers bounds concurrent simulations; <=0 means GOMAXPROCS.
	Workers int
	// Dilute divides every grid size by this factor (minimum 8 CTAs);
	// used by tests to run experiments quickly. <=1 means full size.
	Dilute int
	// CacheDir, when non-empty, persists memoized run results on disk
	// keyed by the same content fingerprint as the in-memory cache, so
	// repeated invocations (profiling, bench re-runs, CI) skip
	// already-simulated points. See diskcache.go. With Checkpoint set it
	// also persists prefix checkpoints, so forked sweeps resume across
	// processes. The directory is managed by the transactional result
	// store (internal/resultstore): results, checkpoints, and journal
	// lines commit atomically, with end-to-end checksums; directories
	// written by pre-store builds remain readable.
	CacheDir string
	// MirrorDir, when non-empty (requires CacheDir), attaches a replica
	// directory: every store transaction applies to both sides, corrupt
	// primary objects heal from the mirror on read, and
	// resultstore.Repair restores either side bit-identically from the
	// other.
	MirrorDir string
	// StoreFault, when non-nil, intercepts every result-store filesystem
	// operation with an injected storage fault (crash drills and
	// kill-point tests; see faultinject.StoreSpec). Nil in normal
	// operation.
	StoreFault *faultinject.StoreHook
	// Checkpoint enables prefix-forked sweeps: jobs that differ only in
	// parameters the simulation consumes late (the VT swap latencies)
	// share their common prefix through a checkpoint instead of each
	// re-simulating it. Results are bit-identical either way; see
	// fork.go.
	Checkpoint bool
	// ForkCycle, when positive, pins the donor's capture to the first
	// simulated cycle at or past this value instead of the adaptive
	// periodic cadence. Zero (the default) lets the donor capture
	// periodically while the fork guard holds and forks from the last
	// guarded checkpoint.
	ForkCycle int64

	// Supervision (see supervisor.go).

	// FailDir, when non-empty, receives one JSON repro bundle per run
	// that fails after the retry ladder, instead of the failure aborting
	// the sweep.
	FailDir string
	// RunTimeout bounds each simulation's wall-clock time; a run past the
	// deadline aborts with a full diagnostic. Zero disables the bound.
	RunTimeout time.Duration
	// CheckInvariants runs every simulation with the gpu conservation-
	// invariant checker enabled (see gpu.Options.CheckInvariants).
	CheckInvariants bool
	// Journal, when non-nil, records every executed run's outcome in the
	// append-only completion journal, making the sweep resumable (see
	// journal.go).
	Journal *Journal
	// Resume marks this sweep as resuming a journaled one: jobs the
	// journal recorded as failed are counted in RunMetrics.ResumedFailed
	// when they re-execute.
	Resume bool
	// Inject installs a deterministic fault into the matching run (tests
	// and the CI supervisor drill). Nil in normal operation.
	Inject *faultinject.Spec
	// Telemetry attaches a telemetry collector to every executed
	// simulation (see internal/telemetry) and folds its window/span
	// totals into RunMetrics. The collector is a pure observer, so
	// results — and therefore the memo/disk-cache fingerprints — are
	// unchanged; cache hits skip simulation and record no telemetry.
	Telemetry bool
	// Sampling runs every simulation in interval/sampled mode (see
	// gpu.SamplingOptions): detailed windows alternate with functional
	// fast-forward spans and the cycle count is extrapolated within the
	// run's reported error bound. Sampled results are approximations, so
	// the sampling configuration is part of the memo/disk-cache
	// fingerprint and of the journal header — a sampled sweep never
	// poisons an exact cache or resumes an exact journal. Incompatible
	// with Checkpoint and CheckInvariants (gpu.Run rejects the
	// combination); fault-injected runs, which force the invariant
	// checker, execute exactly. The zero value (the default) runs fully
	// detailed.
	Sampling gpu.SamplingOptions

	// Observability (see internal/sweepobs and monitor.go).

	// Trace, when non-nil, records a sweep-lifecycle span tree: every
	// job emits plan → store lookup → fork → execute → store-tx spans
	// plus supervisor events. Nil (the default) disables tracing; every
	// tracer hook is a nil-receiver no-op, so the off path costs a nil
	// check (the CI overhead gate's contract).
	Trace *sweepobs.Tracer
	// Monitor receives live job begin/finish bookkeeping and serves the
	// -monitor endpoints. Nil uses the process-wide DefaultMonitor,
	// preserving the old package-global behavior.
	Monitor *Monitor

	// span is the current parent span, threaded through the by-value
	// Params copies as execution descends (experiment → job → attempt).
	span sweepobs.SpanID
}

// DefaultParams returns the evaluation defaults.
func DefaultParams() Params {
	return Params{Scale: 1, Config: config.GTX480()}
}

func (p Params) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the stable name used by cmd/vtbench and bench_test.go.
	ID string
	// Title describes what is reproduced.
	Title string
	// Paper states the paper-side expectation being tested.
	Paper string
	// Run executes the experiment and writes its table(s).
	Run func(p Params, w io.Writer) error
}

var experiments []Experiment

func register(e Experiment) { experiments = append(experiments, e) }

// Experiments returns all experiments in registration (paper) order.
func Experiments() []Experiment {
	out := make([]Experiment, len(experiments))
	copy(out, experiments)
	return out
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	for _, e := range experiments {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(experiments))
	for _, e := range experiments {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (known: %v)", id, ids)
}

// RunAll executes every experiment in order. A failing experiment no
// longer aborts the sweep: the failure is reported inline, the remaining
// experiments run, and the joined error is returned at the end (the
// supervisor has already written any repro bundles by then).
func RunAll(p Params, w io.Writer) error {
	var errs []error
	for _, e := range experiments {
		fmt.Fprintf(w, "### %s — %s\n", e.ID, e.Title)
		if e.Paper != "" {
			fmt.Fprintf(w, "paper: %s\n\n", e.Paper)
		}
		if err := RunOne(e, p, w); err != nil {
			fmt.Fprintf(w, "EXPERIMENT FAILED %s: %v\n\n", e.ID, err)
			errs = append(errs, fmt.Errorf("%s: %w", e.ID, err))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("harness: %d experiment(s) failed: %w", len(errs), errors.Join(errs...))
	}
	return nil
}

// labelCtx carries the pprof labels of the experiment currently running,
// so runMany can stack (workload, variant) labels on top of it.
// Experiments run one at a time, so a single slot suffices.
var (
	labelMu  sync.Mutex
	labelCtx = context.Background()
)

func swapLabelCtx(ctx context.Context) context.Context {
	labelMu.Lock()
	defer labelMu.Unlock()
	old := labelCtx
	labelCtx = ctx
	return old
}

func currentLabelCtx() context.Context {
	labelMu.Lock()
	defer labelMu.Unlock()
	return labelCtx
}

// RunOne executes a single experiment with a pprof "experiment" label
// attached, so CPU profiles segment by figure/table as well as by the
// per-run (workload, variant) labels runMany adds.
func RunOne(e Experiment, p Params, w io.Writer) error {
	var err error
	eid := p.Trace.Begin(p.span, "experiment", e.ID, "")
	p.span = eid
	pprof.Do(context.Background(), pprof.Labels("experiment", e.ID),
		func(ctx context.Context) {
			old := swapLabelCtx(ctx)
			defer swapLabelCtx(old)
			err = e.Run(p, w)
		})
	if err != nil {
		p.Trace.SetAttr(eid, "error", "true")
	}
	p.Trace.End(eid)
	return err
}

// job is one simulation request.
type job struct {
	workload string
	variant  string // distinguishes sweep points; "" for plain runs
	mutate   func(*config.GPUConfig)
	// prefixFP, when non-empty, marks the job as part of a prefix-fork
	// group (set by forkPlan; see fork.go).
	prefixFP string
}

// key identifies a completed run.
type key struct {
	Workload string
	Variant  string
}

// runMany executes all jobs with bounded parallelism and returns results
// keyed by (workload, variant). Repeated simulation points are served
// from the memo cache (see memo.go). Every job runs even when earlier
// ones fail — the supervisor turns failures into repro bundles — and the
// per-job errors are joined (in job order) into the returned error, so a
// partially failed batch still surfaces as a failure to its experiment.
// Each run carries pprof labels so CPU profiles attribute samples to the
// (workload, variant) that burned them.
func runMany(p Params, jobs []job) (map[key]*gpu.Result, error) {
	plan := p.Trace.Begin(p.span, "plan", "", "")
	jobs = forkPlan(p, jobs)
	p.Trace.End(plan)
	mon := p.monitor()
	results := make(map[key]*gpu.Result, len(jobs))
	var mu sync.Mutex
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, p.workers())
	var wg sync.WaitGroup
	for i, j := range jobs {
		// Take the semaphore slot before spawning, so at most `workers`
		// goroutines exist at a time (a 590-job RunAll used to park
		// hundreds of them on this channel). The job span starts after
		// the slot is taken, so tracer worker slots mirror real
		// concurrency.
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			defer func() { <-sem }()
			var res *gpu.Result
			var err error
			labels := pprof.Labels("workload", j.workload, "variant", j.variant)
			pprof.Do(currentLabelCtx(), labels, func(context.Context) {
				jid := p.Trace.BeginJob(p.span, j.workload, j.variant)
				mon.beginJob(j)
				defer mon.endJob(j)
				defer p.Trace.EndJob(jid)
				jp := p
				jp.span = jid
				res, err = memoRun(jp, j)
			})
			if err != nil {
				errs[i] = fmt.Errorf("%s/%s: %w", j.workload, j.variant, err)
				return
			}
			mu.Lock()
			results[key{j.workload, j.variant}] = res
			mu.Unlock()
		}(i, j)
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// policyJobs builds one job per (workload, policy) pair.
func policyJobs(names []string, policies []config.Policy) []job {
	var jobs []job
	for _, n := range names {
		for _, p := range policies {
			p := p
			jobs = append(jobs, job{
				workload: n,
				variant:  p.String(),
				mutate:   func(c *config.GPUConfig) { c.Policy = p },
			})
		}
	}
	return jobs
}

// suiteNames returns every workload name.
func suiteNames() []string { return kernels.Names() }

// sweepNames is the focused subset used by the parameter sweeps: the five
// scheduling-limited gainers plus one capacity-limited control, chosen to
// keep sweep run time tractable while covering both regimes.
func sweepNames() []string {
	return []string{"bfs", "spmv", "pathfinder", "lud", "nw", "srad"}
}
