package harness

import (
	"io"

	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/stats"
)

func init() {
	register(tableEnergy())
	register(figKepler())
}

// tableEnergy estimates energy for baseline vs VT using the first-order
// model: VT finishes the same work in fewer cycles, cutting static energy,
// while swap traffic adds a small dynamic term.
func tableEnergy() Experiment {
	return Experiment{
		ID:    "table-energy",
		Title: "Energy estimate: baseline vs VT (first-order model)",
		Paper: "extension: the hardware-overhead argument implies an energy win from shorter runtime",
		Run: func(p Params, w io.Writer) error {
			pols := []config.Policy{config.PolicyBaseline, config.PolicyVT}
			res, err := runMany(p, policyJobs(suiteNames(), pols))
			if err != nil {
				return err
			}
			m := energy.Default()
			t := stats.NewTable("energy (mJ)",
				"workload", "base-total", "vt-total", "vt/base", "vt-swap-mJ", "edp-ratio")
			var ratios []float64
			for _, n := range suiteNames() {
				b := res[key{n, "baseline"}]
				v := res[key{n, "vt"}]
				be := m.Estimate(b, &p.Config)
				ve := m.Estimate(v, &p.Config)
				ratio := ve.Total() / be.Total()
				ratios = append(ratios, ratio)
				edp := energy.EDP(ve, v.Cycles) / energy.EDP(be, b.Cycles)
				t.Rowf(n, be.Total(), ve.Total(), ratio, ve.Swap, edp)
			}
			t.Note("geomean VT/baseline energy: %.3f (energy-delay product improves wherever VT speeds up)",
				stats.GeoMean(ratios))
			markSampled(t, p)
			t.Fprint(w)
			return nil
		},
	}
}

// figKepler evaluates VT on a Kepler-class configuration whose scheduling
// structures are twice Fermi's: the headroom (and hence VT's benefit)
// shrinks but does not vanish for tiny-CTA workloads.
func figKepler() Experiment {
	return Experiment{
		ID:    "fig-kepler",
		Title: "VT on a Kepler-class configuration (2x scheduling structures)",
		Paper: "extension: newer GPUs relax the scheduling limit; tiny-CTA workloads stay limited",
		Run: func(p Params, w io.Writer) error {
			kp := p
			kp.Config = config.KeplerLike()
			fermi, err := runMany(p, policyJobs(sweepNames(), []config.Policy{config.PolicyBaseline, config.PolicyVT}))
			if err != nil {
				return err
			}
			kepler, err := runMany(kp, policyJobs(sweepNames(), []config.Policy{config.PolicyBaseline, config.PolicyVT}))
			if err != nil {
				return err
			}
			t := stats.NewTable("VT speedup by hardware generation", "workload", "fermi", "kepler")
			var f, k []float64
			for _, n := range sweepNames() {
				sf := float64(fermi[key{n, "baseline"}].Cycles) / float64(fermi[key{n, "vt"}].Cycles)
				sk := float64(kepler[key{n, "baseline"}].Cycles) / float64(kepler[key{n, "vt"}].Cycles)
				f = append(f, sf)
				k = append(k, sk)
				t.Rowf(n, sf, sk)
			}
			t.Note("geomean: fermi %s, kepler %s — looser scheduling limits leave less stranded TLP",
				stats.Pct(stats.GeoMean(f)), stats.Pct(stats.GeoMean(k)))
			markSampled(t, p)
			t.Fprint(w)
			return nil
		},
	}
}

func init() {
	register(figMultiKernel())
}

// figMultiKernel evaluates concurrent kernel execution: a latency-bound
// tiny-CTA kernel co-scheduled with a compute-bound one. VT virtualizes
// the mix's CTAs exactly as it does a single kernel's.
func figMultiKernel() Experiment {
	pairs := [][2]string{
		{"nw", "montecarlo"},
		{"pathfinder", "kmeans"},
		{"bfs", "streamcluster"},
	}
	return Experiment{
		ID:    "fig-multikernel",
		Title: "Concurrent kernel execution: latency-bound + compute-bound mixes",
		Paper: "extension: CTA virtualization applies unchanged to concurrent-kernel mixes",
		Run: func(p Params, w io.Writer) error {
			t := stats.NewTable("co-scheduled mixes (cycles, normalized to baseline mix)",
				"mix", "baseline", "vt", "speedup", "swaps")
			for _, pair := range pairs {
				run := func(pol config.Policy) (*gpu.Result, error) {
					// Disjoint memory arenas keep the kernels' buffers
					// from colliding.
					wa, err := kernels.BuildAt(pair[0], p.Scale, kernels.DefaultArena)
					if err != nil {
						return nil, err
					}
					wb, err := kernels.BuildAt(pair[1], p.Scale,
						kernels.DefaultArena+kernels.ArenaStride)
					if err != nil {
						return nil, err
					}
					dil := func(l *isa.Launch) {
						if p.Dilute > 1 {
							g := l.GridDim.Size() / p.Dilute
							if g < 8 {
								g = 8
							}
							l.GridDim = isa.Dim1(g)
						}
					}
					dil(wa.Launch)
					dil(wb.Launch)
					cfg := p.Config
					cfg.Policy = pol
					return gpu.RunMulti([]*isa.Launch{wa.Launch, wb.Launch}, cfg, gpu.Options{
						InitMemory: func(bk *mem.Backing) {
							if wa.Init != nil {
								wa.Init(bk)
							}
							if wb.Init != nil {
								wb.Init(bk)
							}
						},
					})
				}
				base, err := run(config.PolicyBaseline)
				if err != nil {
					return err
				}
				vt, err := run(config.PolicyVT)
				if err != nil {
					return err
				}
				t.Rowf(pair[0]+"+"+pair[1], base.Cycles, vt.Cycles,
					float64(base.Cycles)/float64(vt.Cycles), vt.VT.SwapsOut)
			}
			t.Fprint(w)
			return nil
		},
	}
}
