package harness

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/faultinject"
	"repro/internal/gpu"
)

// testSampling is a window configuration small enough to fire inside the
// heavily diluted sweep shapes the harness tests use.
func testSampling() gpu.SamplingOptions {
	return gpu.SamplingOptions{DetailedCycles: 400, FastForwardCycles: 2000, WarmupCycles: 100}
}

// TestSamplingCacheMiss: sampled cycle counts are extrapolations, so a
// sampled sweep must never be satisfied from an exact sweep's disk cache
// (or vice versa). The sampling configuration is part of the content
// fingerprint, which keys both caches.
func TestSamplingCacheMiss(t *testing.T) {
	ResetMetrics()
	defer ResetMetrics()
	cache := t.TempDir()
	p, jobs := supervisorParams()
	p.CacheDir = cache

	if _, err := runMany(p, jobs); err != nil {
		t.Fatal(err)
	}
	if m := Metrics(); m.Executed != 4 || m.SampledRuns != 0 {
		t.Fatalf("exact sweep: %+v, want 4 executed, 0 sampled", m)
	}

	// Same jobs, same cache dir, sampling on: every run must miss the
	// exact entries and execute (sampled this time).
	ResetMetrics()
	ps := p
	ps.Sampling = testSampling()
	if _, err := runMany(ps, jobs); err != nil {
		t.Fatal(err)
	}
	m := Metrics()
	if m.CacheHits != 0 || m.Executed != 4 {
		t.Fatalf("sampled sweep over exact cache: %+v, want 0 hits / 4 executed", m)
	}
	if m.SampledRuns != 4 {
		t.Fatalf("SampledRuns = %d, want 4", m.SampledRuns)
	}

	// Re-running the sampled sweep hits its own entries; the exact sweep
	// still hits its original ones. Neither cross-contaminates.
	ResetMetrics()
	if _, err := runMany(ps, jobs); err != nil {
		t.Fatal(err)
	}
	if m := Metrics(); m.CacheHits != 4 || m.Executed != 0 {
		t.Fatalf("sampled re-run: %+v, want 4 hits / 0 executed", m)
	}
	ResetMetrics()
	if _, err := runMany(p, jobs); err != nil {
		t.Fatal(err)
	}
	if m := Metrics(); m.CacheHits != 4 || m.Executed != 0 || m.SampledRuns != 0 {
		t.Fatalf("exact re-run: %+v, want 4 hits / 0 executed / 0 sampled", m)
	}
}

// TestSamplingJournalMismatch: a sampled sweep must refuse to resume an
// exact journal (and vice versa) — the fingerprints recorded there would
// never match. Fresh (non-resume) opens rotate the foreign journal aside.
func TestSamplingJournalMismatch(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.jsonl")
	exact := JournalMeta{Scale: 1, Dilute: 60, Config: "small"}
	sampled := exact
	sampled.Sampling = testSampling().String()

	jl, err := OpenJournal(jpath, exact, false)
	if err != nil {
		t.Fatal(err)
	}
	jl.Close()

	if _, err := OpenJournal(jpath, sampled, true); err == nil {
		t.Fatal("sampled resume of an exact journal must be refused")
	}
	// The reverse direction: a sampled journal refuses an exact resume,
	// and also a resume with different windows.
	jl2, err := OpenJournal(jpath, sampled, false)
	if err != nil {
		t.Fatal(err)
	}
	jl2.Close()
	if _, err := OpenJournal(jpath, exact, true); err == nil {
		t.Fatal("exact resume of a sampled journal must be refused")
	}
	other := exact
	other.Sampling = gpu.SamplingOptions{DetailedCycles: 500, FastForwardCycles: 2000}.String()
	if _, err := OpenJournal(jpath, other, true); err == nil {
		t.Fatal("resume with different sampling windows must be refused")
	}
	// Same sampled meta resumes fine.
	jl3, err := OpenJournal(jpath, sampled, true)
	if err != nil {
		t.Fatalf("matching sampled resume failed: %v", err)
	}
	jl3.Close()
}

// TestSamplingInjectedRunsExact: fault-injected runs force the invariant
// checker, which is incompatible with fast-forward spans, so the
// supervisor must run them exactly even in a sampled sweep. The injected
// first attempt panics, the safe-mode retry succeeds; neither may sample.
func TestSamplingInjectedRunsExact(t *testing.T) {
	ResetMetrics()
	defer ResetMetrics()
	p, jobs := supervisorParams()
	p.FailDir = t.TempDir()
	p.Sampling = testSampling()
	p.Inject = &faultinject.Spec{Workload: "vecadd", Variant: "vt", Cycle: 100,
		Kind: faultinject.PanicOnce}

	if _, err := runMany(p, jobs); err != nil {
		t.Fatalf("degradation must absorb the injected failure, got %v", err)
	}
	m := Metrics()
	if m.Degraded != 1 {
		t.Fatalf("metrics = %+v, want 1 degraded", m)
	}
	// Three healthy jobs sampled; the injected one (both attempts) did not.
	if m.SampledRuns != 3 {
		t.Fatalf("SampledRuns = %d, want 3 (injected job runs exactly)", m.SampledRuns)
	}
}

// TestSamplingDisablesPrefixFork: forked runs must be bit-identical to
// full runs, which extrapolated clocks cannot promise, so Checkpoint and
// Sampling together fall back to ordinary full executions.
func TestSamplingDisablesPrefixFork(t *testing.T) {
	ResetMetrics()
	defer ResetMetrics()
	p := Params{Scale: 1, Config: config.Small(), Workers: 2, Dilute: 40,
		Checkpoint: true, Sampling: testSampling()}
	jobs := swapLatJobs("pathfinder", []int{0, 64, 256})
	if _, err := runMany(p, jobs); err != nil {
		t.Fatal(err)
	}
	m := Metrics()
	if m.CheckpointsCaptured != 0 || m.CheckpointHits != 0 {
		t.Fatalf("sampled sweep must not fork: %+v", m)
	}
	if m.SampledRuns == 0 {
		t.Fatal("sweep did not sample at all")
	}
}

// TestSampledFigureIsFlagged: a figure produced by a sampled sweep must
// carry the "sampled" column so it can never pass for exact data; the
// same figure from an exact sweep must not.
func TestSampledFigureIsFlagged(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	e, _ := Get("fig-speedup")
	p := Params{Scale: 1, Config: config.GTX480(), Dilute: 30, Sampling: testSampling()}
	var sb strings.Builder
	if err := e.Run(p, &sb); err != nil {
		t.Fatal(err)
	}
	if out := sb.String(); !strings.Contains(out, "sampled") || !strings.Contains(out, testSampling().String()) {
		t.Errorf("sampled figure not flagged:\n%s", out)
	}

	p.Sampling = gpu.SamplingOptions{}
	sb.Reset()
	if err := e.Run(p, &sb); err != nil {
		t.Fatal(err)
	}
	if out := sb.String(); strings.Contains(out, "sampled") {
		t.Errorf("exact figure wrongly flagged:\n%s", out)
	}
}

// TestSamplingSwapLatDrill is the CI sampled-accuracy drill: one
// fig-swaplat point (pathfinder, baseline vs VT at swap latency 64) run
// exact and sampled. The reported per-run error bound must be honest —
// |sampled-exact|/exact within the bound — the architectural instruction
// count must be exact, spans must actually fire (no vacuous pass), and
// the VT-vs-baseline ordering the figure reports must be preserved.
func TestSamplingSwapLatDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation drill")
	}
	ResetMetrics()
	defer ResetMetrics()
	jobs := append(swapLatJobs("pathfinder", []int{64}),
		Job{Workload: "pathfinder", Variant: "baseline"})
	p := Params{Scale: 1, Config: config.Small(), Workers: 2}
	exact, err := runMany(p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	ps := p
	ps.Sampling = gpu.SamplingOptions{DetailedCycles: 4000, FastForwardCycles: 8000, WarmupCycles: 1000}
	sampled, err := runMany(ps, jobs)
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []key{{Workload: "pathfinder", Variant: "baseline"}, {Workload: "pathfinder", Variant: "lat64"}} {
		e, s := exact[k], sampled[k]
		if s.Sampling == nil || s.Sampling.Spans == 0 || s.Sampling.ExtrapolatedCycles == 0 {
			t.Fatalf("%s: no fast-forward spans ran (%+v); drill is vacuous", k.Variant, s.Sampling)
		}
		if s.SM.Issued != e.SM.Issued {
			t.Errorf("%s: sampled Issued %d != exact %d (architectural state must be exact)",
				k.Variant, s.SM.Issued, e.SM.Issued)
		}
		rel := math.Abs(float64(s.Cycles-e.Cycles)) / float64(e.Cycles)
		t.Logf("%s: exact %d sampled %d rel err %.4f bound %.4f (%d spans, %d extrapolated cycles)",
			k.Variant, e.Cycles, s.Cycles, rel, s.Sampling.ErrorBound,
			s.Sampling.Spans, s.Sampling.ExtrapolatedCycles)
		if rel > s.Sampling.ErrorBound {
			t.Errorf("%s: error %.4f exceeds the reported bound %.4f (dishonest bound)",
				k.Variant, rel, s.Sampling.ErrorBound)
		}
	}

	// The figure's conclusion — does VT at this latency beat baseline? —
	// must not flip under sampling.
	eb := exact[key{Workload: "pathfinder", Variant: "baseline"}].Cycles
	ev := exact[key{Workload: "pathfinder", Variant: "lat64"}].Cycles
	sb := sampled[key{Workload: "pathfinder", Variant: "baseline"}].Cycles
	sv := sampled[key{Workload: "pathfinder", Variant: "lat64"}].Cycles
	if (ev < eb) != (sv < sb) {
		t.Errorf("VT-vs-baseline ordering flipped: exact %d/%d, sampled %d/%d", eb, ev, sb, sv)
	}
}
