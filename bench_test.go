package vtsim

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each iteration regenerates the experiment's full data (all simulations it
// needs). Run verbosely to see the tables:
//
//	go test -bench=BenchmarkFigSpeedup -benchtime=1x -v
//
// Set VTSIM_DILUTE=N to shrink grids N-fold for quick passes. Component
// micro-benchmarks (SIMT stack, cache, scheduler, whole-SM) follow the
// experiment benchmarks.

import (
	"io"
	"os"
	"strconv"
	"testing"

	"repro/internal/config"
	"repro/internal/event"
	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/simt"
)

func benchExperiment(b *testing.B, id string) {
	p := DefaultExperimentParams()
	if d, err := strconv.Atoi(os.Getenv("VTSIM_DILUTE")); err == nil && d > 1 {
		p.Dilute = d
	}
	var out io.Writer = io.Discard
	if testing.Verbose() {
		out = os.Stdout
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Drop the memo cache so every iteration re-simulates; otherwise
		// iterations after the first would measure cache lookups.
		ResetExperimentMetrics()
		if err := RunExperiment(id, p, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Config regenerates the simulated-hardware table.
func BenchmarkTable1Config(b *testing.B) { benchExperiment(b, "table1-config") }

// BenchmarkTable2Benchmarks regenerates the benchmark-characteristics table.
func BenchmarkTable2Benchmarks(b *testing.B) { benchExperiment(b, "table2-benchmarks") }

// BenchmarkFigLimiter regenerates the stranded-TLP motivation figure.
func BenchmarkFigLimiter(b *testing.B) { benchExperiment(b, "fig-limiter") }

// BenchmarkFigTLP regenerates the active/resident-warps figure.
func BenchmarkFigTLP(b *testing.B) { benchExperiment(b, "fig-tlp") }

// BenchmarkFigSpeedup regenerates the headline per-benchmark speedup figure
// (paper: +23.9% average).
func BenchmarkFigSpeedup(b *testing.B) { benchExperiment(b, "fig-speedup") }

// BenchmarkFigIdealGap regenerates the VT-vs-ideal comparison.
func BenchmarkFigIdealGap(b *testing.B) { benchExperiment(b, "fig-ideal-gap") }

// BenchmarkFigFullSwap regenerates the off-chip context-switch strawman
// comparison.
func BenchmarkFigFullSwap(b *testing.B) { benchExperiment(b, "fig-fullswap") }

// BenchmarkFigSwapLatency regenerates the swap-latency sensitivity sweep.
func BenchmarkFigSwapLatency(b *testing.B) { benchExperiment(b, "fig-swaplat") }

// BenchmarkFigVirtualCap regenerates the virtual-CTA-budget sweep.
func BenchmarkFigVirtualCap(b *testing.B) { benchExperiment(b, "fig-virtcap") }

// BenchmarkFigRFSize regenerates the register-file-size sensitivity study.
func BenchmarkFigRFSize(b *testing.B) { benchExperiment(b, "fig-rfsize") }

// BenchmarkFigScheduler regenerates the GTO-vs-LRR interaction study.
func BenchmarkFigScheduler(b *testing.B) { benchExperiment(b, "fig-sched") }

// BenchmarkTableSwap regenerates the swap-behaviour statistics table.
func BenchmarkTableSwap(b *testing.B) { benchExperiment(b, "table-swap") }

// BenchmarkTableHardware regenerates the hardware-overhead estimate.
func BenchmarkTableHardware(b *testing.B) { benchExperiment(b, "table-hw") }

// --- component micro-benchmarks ---

// BenchmarkSIMTStackDivergence measures divergence/reconvergence handling.
func BenchmarkSIMTStackDivergence(b *testing.B) {
	var s simt.Stack
	for i := 0; i < b.N; i++ {
		s.Reset(32)
		s.Branch(0x0000FFFF, 10, 20)
		for !s.Finished() {
			pc, active, ok := s.Current()
			if !ok {
				break
			}
			if pc >= 19 {
				s.Exit(active)
				continue
			}
			s.Advance()
		}
	}
}

// BenchmarkCacheAccess measures tag-array probe/fill throughput.
func BenchmarkCacheAccess(b *testing.B) {
	ta := mem.NewTagArray(32, 4, 128)
	for i := 0; i < b.N; i++ {
		line := uint32(i%1024) * 128
		if !ta.Probe(line) {
			ta.Fill(line)
		}
	}
}

// BenchmarkEventQueue measures the discrete-event spine.
func BenchmarkEventQueue(b *testing.B) {
	q := event.NewQueue()
	n := 0
	for i := 0; i < b.N; i++ {
		q.At(int64(i+10), func() { n++ })
		if i%16 == 15 {
			q.AdvanceTo(int64(i))
		}
	}
	q.AdvanceTo(int64(b.N + 10))
	if n != b.N {
		b.Fatalf("ran %d of %d events", n, b.N)
	}
}

// BenchmarkSimulationCyclesPerSecond measures end-to-end simulator speed on
// one representative workload; the metric is simulated cycles per wall
// second.
func BenchmarkSimulationCyclesPerSecond(b *testing.B) {
	cfg := config.GTX480()
	// Build outside the timed region: workload generation is setup, not
	// simulation, and gpu.Run never mutates the Launch.
	w, err := kernels.Build("pathfinder", 1)
	if err != nil {
		b.Fatal(err)
	}
	var cycles int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := gpu.Run(w.Launch, cfg, gpu.Options{InitMemory: w.Init})
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}

// BenchmarkSimulationVT measures end-to-end speed with the VT controller
// active (swap machinery on the hot path).
func BenchmarkSimulationVT(b *testing.B) {
	cfg := config.GTX480().WithPolicy(config.PolicyVT)
	w, err := kernels.Build("pathfinder", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gpu.Run(w.Launch, cfg, gpu.Options{InitMemory: w.Init}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationVT regenerates the VT design-space ablation.
func BenchmarkAblationVT(b *testing.B) { benchExperiment(b, "ablation-vt") }

// BenchmarkAblationModel regenerates the simulator-model robustness check.
func BenchmarkAblationModel(b *testing.B) { benchExperiment(b, "ablation-model") }

// BenchmarkFigExtras regenerates the extension-workload evaluation.
func BenchmarkFigExtras(b *testing.B) { benchExperiment(b, "fig-extras") }

// BenchmarkTableEnergy regenerates the first-order energy estimate.
func BenchmarkTableEnergy(b *testing.B) { benchExperiment(b, "table-energy") }

// BenchmarkFigKepler regenerates the Kepler-generation sensitivity study.
func BenchmarkFigKepler(b *testing.B) { benchExperiment(b, "fig-kepler") }

// BenchmarkFigMultiKernel regenerates the concurrent-kernel-mix study.
func BenchmarkFigMultiKernel(b *testing.B) { benchExperiment(b, "fig-multikernel") }
