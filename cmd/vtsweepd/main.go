// Command vtsweepd is the distributed sweep coordinator: it plans the
// requested experiments exactly like vtbench, but dispatches every
// simulation to a pull-based worker fleet (vtbench -worker) over the
// fabric job API instead of executing locally. Results, the completion
// journal, and checkpoints land in the coordinator's result store; the
// fleet dashboard (HTML, /status JSON, Prometheus /metrics with
// per-worker labels) serves on the same address as the job API.
//
// Usage:
//
//	vtsweepd -store c -run fig-swaplat            # serve on :7077, wait for workers
//	vtbench  -worker http://host:7077 -store w1   # ... on each worker machine
//	vtsweepd -store c -addr :9000 -lease-ttl 30s  # custom port and lease TTL
//	vtsweepd -store c -resume                     # re-lease only what the journal lacks
//
// Determinism contract: a sweep run on N workers produces bit-identical
// sim_cycles and tables to the single-process vtbench run of the same
// flags, including when workers crash and their jobs are re-leased.
//
// Exit codes match vtbench: 0 on success, 1 on a fatal setup error, 3
// when the sweep completed with failed runs, 128+signum after a
// graceful SIGINT/SIGTERM drain.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	vtsim "repro"
	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/stats"
	"repro/internal/sweepobs"
)

// sweepReport mirrors the vtbench -json schema (benchReportSchemaVersion
// 5) so cmd/benchcheck accepts and compares coordinator records against
// single-process baselines. Workers is the fleet size — every worker
// that completed at least one job — instead of local parallelism.
type sweepReport struct {
	SchemaVersion   int     `json:"schema_version"`
	Date            string  `json:"date"`
	GoVersion       string  `json:"go_version"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	Scale           int     `json:"scale"`
	Dilute          int     `json:"dilute"`
	Workers         int     `json:"workers"`
	TotalWallSec    float64 `json:"total_wall_seconds"`
	RunsRequested   int     `json:"runs_requested"`
	RunsExecuted    int     `json:"runs_executed"`
	CacheHits       int     `json:"cache_hits"`
	SimCycles       int64   `json:"sim_cycles"`
	SimCyclesPerSec float64 `json:"simcycles_per_sec"`
	RunsRetried     int     `json:"runs_retried,omitempty"`
	RunsDegraded    int     `json:"runs_degraded,omitempty"`
	RunsFailed      int     `json:"runs_failed,omitempty"`
	Sampling        string  `json:"sampling,omitempty"`
	MaxErrorBound   float64 `json:"max_error_bound,omitempty"`

	Experiments []expReport `json:"experiments"`
}

type expReport struct {
	ID              string  `json:"id"`
	WallSeconds     float64 `json:"wall_seconds"`
	RunsRequested   int     `json:"runs_requested"`
	RunsExecuted    int     `json:"runs_executed"`
	CacheHits       int     `json:"cache_hits"`
	SimCycles       int64   `json:"sim_cycles"`
	SimCyclesPerSec float64 `json:"simcycles_per_sec"`
	Error           string  `json:"error,omitempty"`
}

func main() { os.Exit(realMain()) }

func realMain() int {
	var (
		addr       = flag.String("addr", ":7077", "job API + fleet dashboard address")
		run        = flag.String("run", "all", "experiment ID or \"all\"")
		scale      = flag.Int("scale", 1, "grid size multiplier")
		dilute     = flag.Int("dilute", 1, "divide grid sizes by this factor (quick passes)")
		dispatch   = flag.Int("dispatch", 64, "jobs dispatched to the fleet concurrently")
		out        = flag.String("out", "", "write tables to file instead of stdout")
		csvDir     = flag.String("csv", "", "also write every table as CSV into this directory")
		jsonPath   = flag.String("json", "", "write the sweep record (vtbench -json schema) to this file")
		storeDir   = flag.String("store", "", "coordinator result store: fleet cache, checkpoints, and the distributed completion journal")
		mirrorDir  = flag.String("mirror", "", "replicate the coordinator store to this second directory")
		failDir    = flag.String("faildir", "failures", "write a JSON repro bundle per failed local fallback run (\"\" disables)")
		timeout    = flag.Duration("timeout", 0, "wall-clock deadline per simulation, enforced on workers (0 = none)")
		checkInv   = flag.Bool("checkinvariants", false, "workers run every simulation with the invariant checker")
		checkpoint = flag.Bool("checkpoint", false, "prefix-fork sweep points; the donor checkpoint is shared fleet-wide through the store")
		forkCycle  = flag.Int64("forkcycle", 0, "with -checkpoint, pin the donor capture cycle")
		sample     = flag.String("sample", "", "interval/sampled simulation as detailed:fastforward[:warmup] cycles")
		resume     = flag.Bool("resume", false, "resume a journaled sweep: only points the store lacks are dispatched")
		leaseTTL   = flag.Duration("lease-ttl", fabric.DefaultLeaseTTL, "job lease TTL; an unrenewed lease is reclaimed and re-dispatched")
		list       = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range vtsim.Experiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return 0
	}
	if *storeDir == "" {
		return fatalf("-store is required: the coordinator owns the fleet's results and completion journal")
	}
	if *resume && *storeDir == "" {
		return fatalf("-resume needs -store")
	}

	ctx, stopSignals := signalContext()
	defer stopSignals()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fatalf("%v", err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fatalf("%v", err)
		}
		stats.SetCSVDir(*csvDir)
	}

	p := vtsim.DefaultExperimentParams()
	p.Scale = *scale
	p.Dilute = *dilute
	p.CacheDir = *storeDir
	p.MirrorDir = *mirrorDir
	p.FailDir = *failDir
	p.RunTimeout = *timeout
	p.CheckInvariants = *checkInv
	p.Checkpoint = *checkpoint
	p.ForkCycle = *forkCycle
	if *sample != "" {
		so, err := gpu.ParseSampling(*sample)
		if err != nil {
			return fatalf("%v", err)
		}
		if so.Enabled() && *checkpoint {
			return fatalf("-sample is incompatible with -checkpoint")
		}
		p.Sampling = so
	}

	mon := harness.NewMonitor()
	p.Monitor = mon
	tracer := sweepobs.New()
	mon.SetTracer(tracer)
	p.Trace = tracer

	meta := harness.JournalMeta{Scale: *scale, Dilute: *dilute, Config: p.Config.Name, Sampling: p.Sampling.String()}
	jl, err := harness.OpenJournal(filepath.Join(*storeDir, harness.JournalFileName), meta, *resume)
	if err != nil {
		return fatalf("%v", err)
	}
	defer jl.Close()
	p.Journal = jl
	p.Resume = *resume
	if *mirrorDir != "" {
		if err := harness.EnsureJournalHeader(filepath.Join(*mirrorDir, harness.JournalFileName), meta); err != nil {
			return fatalf("mirror journal: %v", err)
		}
	}
	if *resume {
		okN, degraded, failed := jl.Summary()
		fmt.Fprintf(os.Stderr, "vtsweepd: resuming sweep: journal records %d ok, %d degraded, %d failed\n",
			okN, degraded, failed)
	}

	// The coordinator's own Params (store commits, journal, monitor) have
	// no Ctx: a completion arriving during drain must still commit. Only
	// the sweep copy below is cancellable.
	coord := fabric.New(fabric.Config{Params: p, LeaseTTL: *leaseTTL})
	defer coord.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fatalf("listen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "vtsweepd: job API + fleet dashboard on http://%s/ (lease TTL %s)\n", ln.Addr(), *leaseTTL)
	srv := &http.Server{Handler: coord.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			srv.Close()
		}
		if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "vtsweepd: server: %v\n", err)
		}
	}()

	sp := p
	sp.Executor = coord.Executor()
	sp.Workers = *dispatch
	sp.Ctx = ctx

	var todo []vtsim.Experiment
	if *run == "all" {
		todo = vtsim.Experiments()
	} else {
		e, err := vtsim.GetExperiment(*run)
		if err != nil {
			return fatalf("%v", err)
		}
		todo = []vtsim.Experiment{e}
	}

	report := sweepReport{
		SchemaVersion: 5,
		Date:          time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Scale:         *scale,
		Dilute:        *dilute,
	}
	exitCode := 0
	start := time.Now()
	for _, e := range todo {
		if *run == "all" {
			fmt.Fprintf(w, "### %s — %s\n", e.ID, e.Title)
			if e.Paper != "" {
				fmt.Fprintf(w, "paper: %s\n\n", e.Paper)
			}
		}
		before := vtsim.ExperimentMetrics()
		t0 := time.Now()
		expErr := vtsim.RunExperiment(e.ID, sp, w)
		wall := time.Since(t0).Seconds()
		m := vtsim.ExperimentMetrics()
		r := expReport{
			ID:            e.ID,
			WallSeconds:   wall,
			RunsRequested: m.Requests - before.Requests,
			RunsExecuted:  m.Executed - before.Executed,
			CacheHits:     m.CacheHits - before.CacheHits,
			SimCycles:     m.SimCycles - before.SimCycles,
		}
		if wall > 0 {
			r.SimCyclesPerSec = float64(r.SimCycles) / wall
		}
		if expErr != nil {
			r.Error = expErr.Error()
			exitCode = 3
			fmt.Fprintf(os.Stderr, "vtsweepd: %s failed: %v\n", e.ID, expErr)
			fmt.Fprintf(w, "EXPERIMENT FAILED %s: %v\n\n", e.ID, expErr)
		}
		report.Experiments = append(report.Experiments, r)
	}
	// Sweep done: close the queue so workers see 410 and exit. Linger a
	// couple of poll intervals before the deferred Shutdown tears the
	// listener down, so draining workers observe the 410 (and exit 0)
	// instead of a connection refusal.
	coord.Close()
	st := coord.Status()
	if len(st.Workers) > 0 {
		time.Sleep(1500 * time.Millisecond)
	}

	report.TotalWallSec = time.Since(start).Seconds()
	m := vtsim.ExperimentMetrics()
	report.RunsRequested = m.Requests
	report.RunsExecuted = m.Executed
	report.CacheHits = m.CacheHits
	report.SimCycles = m.SimCycles
	report.RunsRetried = m.Retries
	report.RunsDegraded = m.Degraded
	report.RunsFailed = m.Failures
	report.Sampling = p.Sampling.String()
	report.MaxErrorBound = m.MaxErrorBound
	report.Workers = len(st.Workers)
	if report.TotalWallSec > 0 {
		report.SimCyclesPerSec = float64(m.SimCycles) / report.TotalWallSec
	}
	fmt.Fprintf(w, "total wall time: %s\n", time.Duration(report.TotalWallSec*float64(time.Second)).Round(time.Millisecond))
	fmt.Fprintf(w, "fleet: %d workers, %d completions (%d duplicate), leases %d granted / %d renewed / %d expired / %d released\n",
		len(st.Workers), st.Completions, st.DuplicateCompletions,
		st.LeasesGranted, st.LeasesRenewed, st.LeasesExpired, st.LeasesReleased)
	if m.Failures > 0 {
		fmt.Fprintf(w, "supervisor: %d failed runs (journaled; -resume re-dispatches them)\n", m.Failures)
	}

	if *jsonPath != "" {
		b, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return fatalf("json: %v", err)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			return fatalf("json: %v", err)
		}
		fmt.Fprintf(os.Stderr, "vtsweepd: wrote %s\n", *jsonPath)
	}
	return signalExitCode(exitCode)
}

var termSignal atomic.Int32

// signalContext cancels the sweep on the first SIGINT/SIGTERM — jobs
// stop dispatching, leased work drains, journal and store flush through
// the normal exit path — and detaches, so a second signal kills.
func signalContext() (context.Context, func()) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		s, ok := <-ch
		if !ok {
			return
		}
		if sn, isSys := s.(syscall.Signal); isSys {
			termSignal.Store(int32(sn))
		} else {
			termSignal.Store(int32(syscall.SIGINT))
		}
		fmt.Fprintf(os.Stderr, "vtsweepd: %v: draining dispatched jobs, flushing journal/store (signal again to kill)\n", s)
		signal.Stop(ch)
		cancel()
	}()
	return ctx, func() { signal.Stop(ch); cancel() }
}

func signalExitCode(code int) int {
	if sn := termSignal.Load(); sn != 0 {
		return 128 + int(sn)
	}
	return code
}

func fatalf(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "vtsweepd: "+format+"\n", args...)
	return 1
}
