package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadToleratesUnknownFields pins benchcheck's forward/backward
// compatibility: a report carrying fields this binary has never heard of
// (newer schema_version, telemetry aggregates) must still load, and the
// fields benchcheck gates on must come through intact. Old committed
// baselines likewise keep working as vtbench's -json document grows.
func TestLoadToleratesUnknownFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	doc := `{
		"schema_version": 99,
		"sim_cycles": 1000,
		"simcycles_per_sec": 2500.5,
		"telemetry_windows": 42,
		"telemetry_spans": 7,
		"some_future_field": {"nested": [1, 2, 3]}
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := load(path)
	if err != nil {
		t.Fatalf("unknown fields must not break loading: %v", err)
	}
	if r.SimCycles != 1000 || r.SimCyclesPerSec != 2500.5 {
		t.Fatalf("known fields mangled: %+v", r)
	}
}

// TestParseAllocs pins the -allocs parser against real `go test -bench
// -benchmem` shapes: a -GOMAXPROCS name suffix, custom metrics between
// ns/op and allocs/op, unrelated benchmarks on surrounding lines, and
// averaging across -count repetitions.
func TestParseAllocs(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: repro
cpu: Some CPU @ 2.10GHz
BenchmarkOther-8                 	     100	  12345 ns/op	     999 allocs/op
BenchmarkSimulationCyclesPerSecond 	       1	  90120507 ns/op	    202579 simcycles/s	 6077744 B/op	    7038 allocs/op
BenchmarkSimulationCyclesPerSecond-8 	       1	  90120507 ns/op	    202579 simcycles/s	 6077744 B/op	    7040 allocs/op
PASS
ok  	repro	0.095s
`
	got, err := parseAllocs(out, "BenchmarkSimulationCyclesPerSecond")
	if err != nil {
		t.Fatal(err)
	}
	if got != 7039 { // mean of 7038 and 7040
		t.Fatalf("parseAllocs = %v, want 7039", got)
	}
}

// TestParseAllocsMissing: output without -benchmem (no allocs/op column)
// or without the target benchmark must error rather than pass vacuously.
func TestParseAllocsMissing(t *testing.T) {
	noMem := "BenchmarkSimulationCyclesPerSecond \t 1 \t 90120507 ns/op\nPASS\n"
	if _, err := parseAllocs(noMem, "BenchmarkSimulationCyclesPerSecond"); err == nil {
		t.Fatal("output without allocs/op must error")
	}
	if _, err := parseAllocs("PASS\n", "BenchmarkSimulationCyclesPerSecond"); err == nil {
		t.Fatal("output without the benchmark must error")
	}
	// A benchmark whose name merely extends the target must not match.
	other := "BenchmarkSimulationCyclesPerSecondX-8 \t 1 \t 5 ns/op \t 3 allocs/op\n"
	if _, err := parseAllocs(other, "BenchmarkSimulationCyclesPerSecond"); err == nil {
		t.Fatal("prefix-extended benchmark name must not match")
	}
}

// TestCheckAllocs pins the gate arithmetic: growth at the ceiling passes,
// a hair beyond fails, and shrinkage always passes.
func TestCheckAllocs(t *testing.T) {
	if err := checkAllocs(10000, 11000, 0.10); err != nil {
		t.Fatalf("growth exactly at tolerance must pass: %v", err)
	}
	if err := checkAllocs(10000, 11001, 0.10); err == nil {
		t.Fatal("growth beyond tolerance must fail")
	}
	if err := checkAllocs(10000, 500, 0.10); err != nil {
		t.Fatalf("shrinkage must pass: %v", err)
	}
}

// TestLoadSimulationBenchmark: the -allocs baseline record nests under
// simulation_benchmark and must decode alongside the throughput fields.
func TestLoadSimulationBenchmark(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	doc := `{
		"sim_cycles": 5,
		"simcycles_per_sec": 10.0,
		"simulation_benchmark": {"current_allocs_per_run": 6878}
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.SimulationBenchmark.CurrentAllocsPerRun != 6878 {
		t.Fatalf("simulation_benchmark mangled: %+v", r.SimulationBenchmark)
	}
}

// TestCheckThroughputSkipsUnpopulatedRecords: per-experiment records with
// simcycles_per_sec 0 — static tables that simulate nothing, or
// experiments fully served from the cache when the report was produced —
// are unpopulated, not "infinitely slow". A mixed record file must
// compare only the populated pairs, note the skips, and never divide by
// zero or pass a record vacuously.
func TestCheckThroughputSkipsUnpopulatedRecords(t *testing.T) {
	base := report{
		SimCycles:       1000,
		SimCyclesPerSec: 1000,
		Experiments: []expRecord{
			{ID: "table1-config", SimCyclesPerSec: 0}, // static table
			{ID: "fig-speedup", SimCyclesPerSec: 0},   // cache-only in baseline
			{ID: "fig-tlp", SimCyclesPerSec: 500},     // populated both sides
			{ID: "fig-swaplat", SimCyclesPerSec: 800}, // populated in baseline only
		},
	}
	cur := report{
		SimCycles:       900,
		SimCyclesPerSec: 950,
		Experiments: []expRecord{
			{ID: "table1-config", SimCyclesPerSec: 0},
			{ID: "fig-speedup", SimCyclesPerSec: 700},
			{ID: "fig-tlp", SimCyclesPerSec: 450},
			{ID: "fig-swaplat", SimCyclesPerSec: 0}, // cache-only now
		},
	}
	var out strings.Builder
	if err := checkThroughput(&out, base, cur, 0.30); err != nil {
		t.Fatalf("mixed records must pass when the total holds: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "skipped 3 unpopulated record(s)") {
		t.Fatalf("missing skip note for the 3 zero-rate records:\n%s", s)
	}
	if !strings.Contains(s, "fig-tlp") {
		t.Fatalf("populated pair not compared:\n%s", s)
	}
	for _, id := range []string{"table1-config", "fig-speedup", "fig-swaplat"} {
		if strings.Contains(s, id) {
			t.Fatalf("unpopulated record %s compared anyway:\n%s", id, s)
		}
	}
	if strings.Contains(s, "Inf") || strings.Contains(s, "NaN") {
		t.Fatalf("division by an unpopulated rate leaked into output:\n%s", s)
	}

	// The total still gates: a real regression fails regardless of skips.
	slow := cur
	slow.SimCyclesPerSec = 600
	if err := checkThroughput(&out, base, slow, 0.30); err == nil {
		t.Fatal("total regression beyond tolerance must fail")
	}
}

// TestSchemaV5StoreFieldsTolerated pins the satellite contract of the
// result-store migration: a schema_version 5 report carrying the new
// store counters (store_hits/store_misses/store_repairs/store_retries)
// gates cleanly against a v4 baseline that has never heard of them, and
// a v4 report checks against a v5 baseline — the counters are additive
// and the gated fields keep their meaning.
func TestSchemaV5StoreFieldsTolerated(t *testing.T) {
	dir := t.TempDir()
	v5 := filepath.Join(dir, "v5.json")
	v4 := filepath.Join(dir, "v4.json")
	v5doc := `{
		"schema_version": 5,
		"sim_cycles": 1000,
		"simcycles_per_sec": 990.0,
		"store_hits": 12,
		"store_misses": 3,
		"store_repairs": 1,
		"store_retries": 2,
		"experiments": [{"id": "fig-speedup", "sim_cycles": 1000, "simcycles_per_sec": 990.0}]
	}`
	v4doc := `{
		"schema_version": 4,
		"sim_cycles": 1000,
		"simcycles_per_sec": 1000.0,
		"experiments": [{"id": "fig-speedup", "sim_cycles": 1000, "simcycles_per_sec": 1000.0}]
	}`
	if err := os.WriteFile(v5, []byte(v5doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v4, []byte(v4doc), 0o644); err != nil {
		t.Fatal(err)
	}
	newer, err := load(v5)
	if err != nil {
		t.Fatalf("v5 report with store counters must load: %v", err)
	}
	older, err := load(v4)
	if err != nil {
		t.Fatal(err)
	}
	if newer.SimCycles != 1000 || newer.SimCyclesPerSec != 990.0 {
		t.Fatalf("gated fields mangled by the v5 additions: %+v", newer)
	}
	var out strings.Builder
	if err := checkThroughput(&out, older, newer, 0.30); err != nil {
		t.Fatalf("v5 current against v4 baseline must gate on throughput alone: %v", err)
	}
	if err := checkThroughput(&out, newer, older, 0.30); err != nil {
		t.Fatalf("v4 current against v5 baseline must gate on throughput alone: %v", err)
	}
}

// TestMultiWorkerRecordAgainstSingleProcess pins the sweep-fabric
// contract: a vtsweepd coordinator record (workers > 1, fleet-aggregate
// simcycles_per_sec) gates against a single-process baseline on the
// aggregate rate — a 4-worker fleet near 4x the baseline passes, a
// fleet that somehow aggregates below the single-process floor fails —
// and the differing fleet sizes are surfaced with a per-worker rate.
func TestMultiWorkerRecordAgainstSingleProcess(t *testing.T) {
	single := report{
		SimCycles:       1_000_000,
		SimCyclesPerSec: 1000,
		Workers:         1,
		Experiments:     []expRecord{{ID: "fig-swaplat", SimCycles: 1_000_000, SimCyclesPerSec: 1000}},
	}
	fleet := report{
		SimCycles:       1_000_000,
		SimCyclesPerSec: 3600, // 4 workers, ~3.6x aggregate
		Workers:         4,
		Experiments:     []expRecord{{ID: "fig-swaplat", SimCycles: 1_000_000, SimCyclesPerSec: 3600}},
	}
	var out strings.Builder
	if err := checkThroughput(&out, single, fleet, 0.30); err != nil {
		t.Fatalf("fleet aggregate above the baseline must pass: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "fleet size 1 -> 4") {
		t.Fatalf("fleet-size change not surfaced:\n%s", s)
	}
	if !strings.Contains(s, "per-worker") {
		t.Fatalf("per-worker rate not surfaced:\n%s", s)
	}

	// The reverse comparison gates too: against a committed 4-worker
	// baseline, a fleet whose aggregate collapsed fails the tolerance.
	slowFleet := fleet
	slowFleet.SimCyclesPerSec = 2000 // 0.56x of the 3600 baseline
	if err := checkThroughput(&out, fleet, slowFleet, 0.30); err == nil {
		t.Fatal("aggregate regression within a fleet must fail")
	}

	// Same fleet size on both sides: no fleet-size note, plain gating.
	out.Reset()
	if err := checkThroughput(&out, fleet, fleet, 0.30); err != nil {
		t.Fatalf("identical fleet records must pass: %v", err)
	}
	if strings.Contains(out.String(), "fleet size") {
		t.Fatalf("fleet-size note printed for identical sizes:\n%s", out.String())
	}
}

// TestWorkersFieldDecodes: the workers field populates from vtbench and
// vtsweepd reports, and its absence (old records) decodes to zero,
// which suppresses the fleet comparison rather than dividing by it.
func TestWorkersFieldDecodes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.json")
	doc := `{"schema_version": 5, "sim_cycles": 10, "simcycles_per_sec": 5.0, "workers": 4}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Workers != 4 {
		t.Fatalf("workers = %d, want 4", r.Workers)
	}
	old := report{SimCycles: 10, SimCyclesPerSec: 5, Workers: 0}
	var out strings.Builder
	if err := checkThroughput(&out, old, r, 0.30); err != nil {
		t.Fatalf("worker-less baseline against fleet record: %v", err)
	}
	if strings.Contains(out.String(), "fleet size") {
		t.Fatalf("fleet note printed despite zero-worker baseline:\n%s", out.String())
	}
}

// TestLoadMissingFields: an old baseline lacking fields decodes to
// zeros, which main() then rejects explicitly rather than dividing by
// zero — check the decode half here.
func TestLoadMissingFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.json")
	if err := os.WriteFile(path, []byte(`{"date": "2025-01-01"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.SimCycles != 0 || r.SimCyclesPerSec != 0 {
		t.Fatalf("missing fields must decode to zero: %+v", r)
	}
}
