package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLoadToleratesUnknownFields pins benchcheck's forward/backward
// compatibility: a report carrying fields this binary has never heard of
// (newer schema_version, telemetry aggregates) must still load, and the
// fields benchcheck gates on must come through intact. Old committed
// baselines likewise keep working as vtbench's -json document grows.
func TestLoadToleratesUnknownFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	doc := `{
		"schema_version": 99,
		"sim_cycles": 1000,
		"simcycles_per_sec": 2500.5,
		"telemetry_windows": 42,
		"telemetry_spans": 7,
		"some_future_field": {"nested": [1, 2, 3]}
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := load(path)
	if err != nil {
		t.Fatalf("unknown fields must not break loading: %v", err)
	}
	if r.SimCycles != 1000 || r.SimCyclesPerSec != 2500.5 {
		t.Fatalf("known fields mangled: %+v", r)
	}
}

// TestLoadMissingFields: an old baseline lacking fields decodes to
// zeros, which main() then rejects explicitly rather than dividing by
// zero — check the decode half here.
func TestLoadMissingFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.json")
	if err := os.WriteFile(path, []byte(`{"date": "2025-01-01"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.SimCycles != 0 || r.SimCyclesPerSec != 0 {
		t.Fatalf("missing fields must decode to zero: %+v", r)
	}
}
