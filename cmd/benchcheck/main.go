// Command benchcheck compares a vtbench -json report against a committed
// baseline and exits nonzero when throughput regresses beyond a tolerance.
// CI runs it after the benchmark step so a PR that slows the simulator by
// more than the allowed fraction fails visibly:
//
//	vtbench -json current.json ...
//	benchcheck -baseline BENCH_sched.json -current current.json -tolerance 0.30
//
// Only total simcycles_per_sec is compared: per-experiment rates on small
// diluted runs are too noisy to gate on. Machine-speed differences between
// the committing host and CI runners are absorbed by the tolerance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// report mirrors the subset of vtbench's -json document benchcheck
// reads. encoding/json ignores fields the struct doesn't declare, so
// reports from newer vtbench versions (schema_version, telemetry
// aggregates, future additions) check cleanly against old baselines and
// vice versa — benchcheck_test.go pins that property. Decoding stays
// deliberately schema-version-agnostic: the two fields read here have
// kept their meaning across every version.
type report struct {
	SimCycles       int64   `json:"sim_cycles"`
	SimCyclesPerSec float64 `json:"simcycles_per_sec"`
}

func load(path string) (report, error) {
	var r report
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func main() {
	var (
		baseline  = flag.String("baseline", "", "committed benchmark record (vtbench -json output)")
		current   = flag.String("current", "", "freshly measured report to check")
		tolerance = flag.Float64("tolerance", 0.30, "allowed fractional regression of simcycles_per_sec")
	)
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -baseline and -current are required")
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	if base.SimCyclesPerSec <= 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: baseline %s has no simcycles_per_sec\n", *baseline)
		os.Exit(2)
	}
	if cur.SimCycles == 0 {
		// An all-cache-hit run measured nothing; refuse to pass vacuously.
		fmt.Fprintf(os.Stderr, "benchcheck: current report simulated 0 cycles (cache-only run?)\n")
		os.Exit(2)
	}
	floor := base.SimCyclesPerSec * (1 - *tolerance)
	ratio := cur.SimCyclesPerSec / base.SimCyclesPerSec
	fmt.Printf("benchcheck: baseline %.0f current %.0f simcycles/s (%.2fx, floor %.0f)\n",
		base.SimCyclesPerSec, cur.SimCyclesPerSec, ratio, floor)
	if cur.SimCyclesPerSec < floor {
		fmt.Fprintf(os.Stderr, "benchcheck: FAIL: regression beyond %.0f%% tolerance\n", *tolerance*100)
		os.Exit(1)
	}
	fmt.Println("benchcheck: OK")
}
