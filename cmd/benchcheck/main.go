// Command benchcheck compares a vtbench -json report against a committed
// baseline and exits nonzero when throughput regresses beyond a tolerance.
// CI runs it after the benchmark step so a PR that slows the simulator by
// more than the allowed fraction fails visibly:
//
//	vtbench -json current.json ...
//	benchcheck -baseline BENCH_sched.json -current current.json -tolerance 0.30
//
// Only total simcycles_per_sec is compared: per-experiment rates on small
// diluted runs are too noisy to gate on. Machine-speed differences between
// the committing host and CI runners are absorbed by the tolerance.
//
// With -allocs the comparison flips to allocation count instead of
// throughput: -current names a `go test -bench -benchmem` output file, the
// allocs/op of BenchmarkSimulationCyclesPerSecond is parsed from it, and
// the check fails when it exceeds the committed baseline's
// simulation_benchmark.current_allocs_per_run by more than the tolerance
// (CI uses 0.10). Unlike wall-clock throughput, allocation counts are
// machine-independent and deterministic, so this gate can be far tighter
// than the 30% throughput floor:
//
//	go test -run '^$' -bench SimulationCyclesPerSecond -benchtime 1x -benchmem . > bench_allocs.txt
//	benchcheck -allocs -baseline BENCH_sched.json -current bench_allocs.txt -tolerance 0.10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// allocsBenchName is the benchmark whose allocs/op the -allocs mode gates
// on — the same run the simulation_benchmark baseline record describes.
const allocsBenchName = "BenchmarkSimulationCyclesPerSecond"

// report mirrors the subset of vtbench's -json document benchcheck
// reads. encoding/json ignores fields the struct doesn't declare, so
// reports from newer vtbench versions (schema_version, telemetry
// aggregates, future additions) check cleanly against old baselines and
// vice versa — benchcheck_test.go pins that property. Decoding stays
// deliberately schema-version-agnostic: the two fields read here have
// kept their meaning across every version.
type report struct {
	SimCycles       int64   `json:"sim_cycles"`
	SimCyclesPerSec float64 `json:"simcycles_per_sec"`

	// Workers is how many execution contexts produced the record: local
	// parallelism for a plain vtbench run, the fleet size for a vtsweepd
	// coordinator record (whose simcycles_per_sec is the fleet
	// aggregate). Zero in pre-fabric reports.
	Workers int `json:"workers"`

	// Experiments are the per-experiment records; compared informationally
	// (never gated — diluted per-experiment rates are too noisy).
	Experiments []expRecord `json:"experiments"`

	// SimulationBenchmark carries the committed allocation record the
	// -allocs mode gates against; absent in plain vtbench -json output.
	SimulationBenchmark struct {
		CurrentAllocsPerRun float64 `json:"current_allocs_per_run"`
	} `json:"simulation_benchmark"`
}

// expRecord is one experiment's row in a report.
type expRecord struct {
	ID              string  `json:"id"`
	SimCycles       int64   `json:"sim_cycles"`
	SimCyclesPerSec float64 `json:"simcycles_per_sec"`
}

// parseAllocs extracts allocs/op for the named benchmark from `go test
// -bench -benchmem` output. Benchmark result lines are whitespace-split
// value/unit pairs after the name and iteration count; the name may carry
// a -GOMAXPROCS suffix. Multiple matching lines (e.g. -count>1) average.
func parseAllocs(out, bench string) (float64, error) {
	var sum float64
	var n int
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) < 2 || (f[0] != bench && !strings.HasPrefix(f[0], bench+"-")) {
			continue
		}
		for i := 2; i+1 < len(f); i += 2 {
			if f[i+1] != "allocs/op" {
				continue
			}
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return 0, fmt.Errorf("bad allocs/op value %q: %w", f[i], err)
			}
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("no %s allocs/op line found (ran without -benchmem?)", bench)
	}
	return sum / float64(n), nil
}

// checkAllocs compares a measured allocs/op against the committed record
// and returns a failure message when growth exceeds the tolerance.
func checkAllocs(base, cur, tolerance float64) error {
	ceiling := base * (1 + tolerance)
	fmt.Printf("benchcheck: baseline %.0f current %.0f allocs/run (%.2fx, ceiling %.0f)\n",
		base, cur, cur/base, ceiling)
	if cur > ceiling {
		return fmt.Errorf("allocs/run grew beyond %.0f%% tolerance", tolerance*100)
	}
	return nil
}

// checkThroughput gates the total simcycles/s against the baseline and
// prints per-experiment ratios for context. Records whose
// simcycles_per_sec is 0 are *unpopulated* — static tables that run no
// simulations, or experiments fully served from the cache in the sweep
// that produced the report — so they are skipped with a note instead of
// yielding a divide-by-zero ratio or a vacuous pass.
func checkThroughput(w io.Writer, base, cur report, tolerance float64) error {
	if base.SimCyclesPerSec <= 0 {
		return fmt.Errorf("baseline has no simcycles_per_sec")
	}
	if cur.SimCycles == 0 {
		// An all-cache-hit run measured nothing; refuse to pass vacuously.
		return fmt.Errorf("current report simulated 0 cycles (cache-only run?)")
	}
	curByID := make(map[string]expRecord, len(cur.Experiments))
	for _, e := range cur.Experiments {
		curByID[e.ID] = e
	}
	skipped := 0
	for _, b := range base.Experiments {
		c, ok := curByID[b.ID]
		if !ok {
			continue
		}
		if b.SimCyclesPerSec == 0 || c.SimCyclesPerSec == 0 {
			skipped++
			continue
		}
		fmt.Fprintf(w, "benchcheck:   %-18s %.2fx\n", b.ID, c.SimCyclesPerSec/b.SimCyclesPerSec)
	}
	if skipped > 0 {
		fmt.Fprintf(w, "benchcheck: skipped %d unpopulated record(s) (simcycles_per_sec: 0)\n", skipped)
	}
	// Multi-worker (sweep fabric) records report the fleet-aggregate
	// rate; the gate below stays on that aggregate — distributed scale-out
	// is exactly the throughput the record claims — but when the fleet
	// sizes differ the per-worker rate is printed for context, so a "4
	// workers barely beat 1" run is visible even while it passes.
	if base.Workers > 0 && cur.Workers > 0 && base.Workers != cur.Workers {
		fmt.Fprintf(w, "benchcheck: fleet size %d -> %d; per-worker %.0f -> %.0f simcycles/s (%.2fx)\n",
			base.Workers, cur.Workers,
			base.SimCyclesPerSec/float64(base.Workers),
			cur.SimCyclesPerSec/float64(cur.Workers),
			(cur.SimCyclesPerSec/float64(cur.Workers))/(base.SimCyclesPerSec/float64(base.Workers)))
	}
	floor := base.SimCyclesPerSec * (1 - tolerance)
	ratio := cur.SimCyclesPerSec / base.SimCyclesPerSec
	fmt.Fprintf(w, "benchcheck: baseline %.0f current %.0f simcycles/s (%.2fx, floor %.0f)\n",
		base.SimCyclesPerSec, cur.SimCyclesPerSec, ratio, floor)
	if cur.SimCyclesPerSec < floor {
		return fmt.Errorf("regression beyond %.0f%% tolerance", tolerance*100)
	}
	return nil
}

func load(path string) (report, error) {
	var r report
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func main() {
	var (
		baseline  = flag.String("baseline", "", "committed benchmark record (vtbench -json output)")
		current   = flag.String("current", "", "freshly measured report to check")
		tolerance = flag.Float64("tolerance", 0.30, "allowed fractional regression (throughput loss, or alloc growth with -allocs)")
		allocs    = flag.Bool("allocs", false, "gate allocs/op of the simulation benchmark instead of throughput; -current is go test -benchmem output")
	)
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -baseline and -current are required")
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	if *allocs {
		out, err := os.ReadFile(*current)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
		cur, err := parseAllocs(string(out), allocsBenchName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", *current, err)
			os.Exit(2)
		}
		rec := base.SimulationBenchmark.CurrentAllocsPerRun
		if rec <= 0 {
			fmt.Fprintf(os.Stderr, "benchcheck: baseline %s has no simulation_benchmark.current_allocs_per_run\n", *baseline)
			os.Exit(2)
		}
		if err := checkAllocs(rec, cur, *tolerance); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("benchcheck: OK")
		return
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	if base.SimCyclesPerSec <= 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: baseline %s has no simcycles_per_sec\n", *baseline)
		os.Exit(2)
	}
	if cur.SimCycles == 0 {
		// An all-cache-hit run measured nothing: unusable input (exit 2),
		// not a regression.
		fmt.Fprintf(os.Stderr, "benchcheck: current report simulated 0 cycles (cache-only run?)\n")
		os.Exit(2)
	}
	if err := checkThroughput(os.Stdout, base, cur, *tolerance); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("benchcheck: OK")
}
