// Command vtsim runs one workload from the synthetic suite on the
// simulated GPU under a chosen CTA scheduling policy and prints the
// simulation statistics.
//
// Usage:
//
//	vtsim -workload bfs -policy vt
//	vtsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	vtsim "repro"
	"repro/internal/config"
	"repro/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "vecadd", "workload name (see -list)")
		policy   = flag.String("policy", "baseline", "baseline | vt | ideal | fullswap")
		sched    = flag.String("sched", "gto", "warp scheduler: gto | lrr")
		scale    = flag.Int("scale", 1, "grid size multiplier")
		sms      = flag.Int("sms", 0, "override SM count (0 = config default)")
		timeline = flag.Int64("timeline", 0, "sample occupancy every N cycles and print the series")
		asJSON   = flag.Bool("json", false, "emit the full result as JSON")
		traceOut = flag.String("trace", "", "write a JSONL event trace (CTA transitions + samples) to this file")
		perfetto = flag.String("perfetto", "", "write a Chrome/Perfetto trace-event JSON timeline to this file")
		teleOut  = flag.String("telemetry", "", "write the telemetry ring dump (windows, spans, histogram) as JSON to this file")
		teleWin  = flag.Int64("telemetry-window", 0, "telemetry window length in cycles (0 = default)")
		list     = flag.Bool("list", false, "list workloads and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range vtsim.WorkloadNames() {
			w, _ := vtsim.BuildWorkload(n, 1)
			fmt.Printf("%-12s %s\n", n, w.Description)
		}
		return
	}

	cfg := vtsim.GTX480()
	switch *policy {
	case "baseline":
		cfg.Policy = vtsim.PolicyBaseline
	case "vt":
		cfg.Policy = vtsim.PolicyVT
	case "ideal":
		cfg.Policy = vtsim.PolicyIdeal
	case "fullswap":
		cfg.Policy = vtsim.PolicyFullSwap
	default:
		fatalf("unknown policy %q", *policy)
	}
	switch *sched {
	case "gto":
		cfg.Scheduler = config.SchedGTO
	case "lrr":
		cfg.Scheduler = config.SchedLRR
	default:
		fatalf("unknown scheduler %q", *sched)
	}
	if *sms > 0 {
		cfg.NumSMs = *sms
	}

	w, err := vtsim.BuildWorkload(*workload, *scale)
	if err != nil {
		fatalf("%v", err)
	}
	var col *vtsim.Collector
	if *perfetto != "" || *teleOut != "" {
		col = vtsim.NewCollector(vtsim.TelemetryConfig{Window: *teleWin, PerSM: true})
	}
	var res *vtsim.Result
	var err2 error
	if *traceOut != "" {
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			fatalf("%v", ferr)
		}
		tw := trace.NewWriter(f)
		tw.Emit(trace.Event{Kind: trace.KindRun, Marker: "start",
			Kernel: w.Name, Policy: cfg.Policy.String()})
		res, err2 = vtsim.RunCollected(w, cfg, *timeline, func(e vtsim.TraceEvent) {
			tw.Emit(trace.Event{Cycle: e.Cycle, Kind: trace.KindCTA, SM: e.SM,
				CTA: e.CTA, From: e.From.String(), To: e.To.String()})
		}, col)
		if err2 == nil {
			for _, sp := range res.Timeline {
				tw.Emit(trace.Event{Cycle: sp.Cycle, Kind: trace.KindSample,
					ActiveWarps: sp.ActiveWarps, ResidentWarps: sp.ResidentWarps, IPC: sp.IPC})
			}
			tw.Emit(trace.Event{Cycle: res.Cycles, Kind: trace.KindRun, Marker: "end"})
		}
		if err := tw.Flush(); err != nil {
			fatalf("trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "trace: wrote %d events to %s\n", tw.Count(), *traceOut)
	} else {
		res, err2 = vtsim.RunCollected(w, cfg, *timeline, nil, col)
	}
	if err2 != nil {
		fatalf("%v", err2)
	}

	if *perfetto != "" {
		f, ferr := os.Create(*perfetto)
		if ferr != nil {
			fatalf("%v", ferr)
		}
		if err := col.WritePerfetto(f); err != nil {
			fatalf("perfetto: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("perfetto: %v", err)
		}
		fmt.Fprintf(os.Stderr, "perfetto: wrote %s (open at ui.perfetto.dev)\n", *perfetto)
	}
	if *teleOut != "" {
		f, ferr := os.Create(*teleOut)
		if ferr != nil {
			fatalf("%v", ferr)
		}
		enc := json.NewEncoder(f)
		if err := enc.Encode(col.Dump()); err != nil {
			fatalf("telemetry: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("telemetry: %v", err)
		}
		windows, spans := col.Totals()
		fmt.Fprintf(os.Stderr, "telemetry: wrote %d windows, %d spans to %s\n",
			windows, spans, *teleOut)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatalf("%v", err)
		}
		return
	}

	fmt.Printf("workload:            %s (%s)\n", w.Name, w.Description)
	fmt.Printf("policy:              %s, scheduler %s, %d SMs\n", res.Policy, cfg.Scheduler, cfg.NumSMs)
	fmt.Printf("grid:                %d CTAs x %d threads\n", w.Launch.GridDim.Size(), w.Launch.BlockDim.Size())
	fmt.Printf("cycles:              %d\n", res.Cycles)
	fmt.Printf("warp instructions:   %d  (IPC %.3f)\n", res.SM.Issued, res.IPC())
	fmt.Printf("thread instructions: %d\n", res.SM.ThreadInstrs)
	fmt.Printf("active warps/SM:     %.1f  (resident %.1f)\n",
		res.AvgActiveWarpsPerSM(), res.AvgResidentWarpsPerSM())
	fmt.Printf("active CTAs/SM:      %.1f  (resident %.1f)\n",
		res.AvgActiveCTAsPerSM(), res.AvgResidentCTAsPerSM())
	fmt.Printf("occupancy limiter:   %s (%d CTAs; capacity %d)\n",
		res.Occupancy.Limiter, res.Occupancy.CTAs, res.Occupancy.CapacityCTAs)
	fmt.Printf("L1 hit rate:         %.3f   L2 hit rate: %.3f\n",
		res.Mem.L1HitRate(), res.Mem.L2HitRate())
	fmt.Printf("DRAM busy:           %.1f%%\n",
		100*float64(res.Mem.DRAMBusy)/float64(res.Cycles*int64(cfg.NumMemPartitions)))
	total := float64(res.SM.SlotIssued + res.SM.SlotStallMem + res.SM.SlotStallALU +
		res.SM.SlotStallBar + res.SM.SlotStallStr + res.SM.SlotIdle)
	fmt.Printf("issue slots:         issued %.1f%%, mem-stall %.1f%%, alu-stall %.1f%%, barrier %.1f%%, structural %.1f%%, idle %.1f%%\n",
		100*float64(res.SM.SlotIssued)/total, 100*float64(res.SM.SlotStallMem)/total,
		100*float64(res.SM.SlotStallALU)/total, 100*float64(res.SM.SlotStallBar)/total,
		100*float64(res.SM.SlotStallStr)/total, 100*float64(res.SM.SlotIdle)/total)
	if res.Policy == vtsim.PolicyVT || res.Policy == vtsim.PolicyFullSwap {
		fmt.Printf("VT swaps:            %d out / %d in (%d fresh activations)\n",
			res.VT.SwapsOut, res.VT.SwapsIn, res.VT.FreshActivates)
		fmt.Printf("VT context peak:     %d bytes; max resident %d CTAs/SM\n",
			res.VT.ContextPeak, res.VT.MaxResident)
	}
	if len(res.Timeline) > 0 {
		fmt.Printf("\ntimeline (active warps/SM, resident warps/SM, interval IPC):\n")
		maxW := 0.0
		for _, sp := range res.Timeline {
			if sp.ResidentWarps > maxW {
				maxW = sp.ResidentWarps
			}
		}
		for _, sp := range res.Timeline {
			bar := ""
			if maxW > 0 {
				bar = strings.Repeat("#", int(sp.ActiveWarps/maxW*40+0.5)) +
					strings.Repeat("-", int((sp.ResidentWarps-sp.ActiveWarps)/maxW*40+0.5))
			}
			fmt.Printf("  %8d  act %5.1f  res %5.1f  ipc %6.2f  %s\n",
				sp.Cycle, sp.ActiveWarps, sp.ResidentWarps, sp.IPC, bar)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vtsim: "+format+"\n", args...)
	os.Exit(1)
}
