// Command vtdiff compares two simulation results saved as JSON by
// `vtsim -json`, printing the relative change of every headline metric —
// the quick way to quantify a configuration or policy change. With
// -rings it instead diffs two telemetry ring dumps (vtsim -telemetry)
// window by window on a common time grid.
//
// Usage:
//
//	vtsim -workload nw -json > base.json
//	vtsim -workload nw -policy vt -json > vt.json
//	vtdiff base.json vt.json
//	vtdiff -rings a-rings.json b-rings.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/gpu"
	"repro/internal/telemetry"
)

func main() {
	rings := flag.Bool("rings", false, "diff two telemetry ring dumps (vtsim -telemetry) per window")
	flag.Parse()
	if flag.NArg() != 2 {
		fatalf("usage: vtdiff [-rings] a.json b.json")
	}
	if *rings {
		if err := diffRings(flag.Arg(0), flag.Arg(1)); err != nil {
			fatalf("%v", err)
		}
		return
	}
	a, err := load(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	b, err := load(flag.Arg(1))
	if err != nil {
		fatalf("%v", err)
	}
	if a.Kernel != b.Kernel {
		fmt.Printf("warning: comparing different kernels (%s vs %s)\n\n", a.Kernel, b.Kernel)
	}

	fmt.Printf("%-24s %14s %14s %10s\n", "metric", a.Policy.String(), b.Policy.String(), "change")
	row := func(name string, va, vb float64) {
		change := "-"
		if va != 0 {
			change = fmt.Sprintf("%+.1f%%", (vb/va-1)*100)
		}
		fmt.Printf("%-24s %14.3f %14.3f %10s\n", name, va, vb, change)
	}
	row("cycles", float64(a.Cycles), float64(b.Cycles))
	row("IPC", a.IPC(), b.IPC())
	row("active warps/SM", a.AvgActiveWarpsPerSM(), b.AvgActiveWarpsPerSM())
	row("resident warps/SM", a.AvgResidentWarpsPerSM(), b.AvgResidentWarpsPerSM())
	row("SIMD efficiency", a.SIMDEfficiency(), b.SIMDEfficiency())
	row("L1 hit rate", a.Mem.L1HitRate(), b.Mem.L1HitRate())
	row("L2 hit rate", a.Mem.L2HitRate(), b.Mem.L2HitRate())
	row("DRAM reads", float64(a.Mem.DRAMReads), float64(b.Mem.DRAMReads))
	row("swaps out", float64(a.VT.SwapsOut), float64(b.VT.SwapsOut))
	if a.Cycles > 0 && b.Cycles > 0 {
		fmt.Printf("\nspeedup (a/b cycles): %.3fx\n", float64(a.Cycles)/float64(b.Cycles))
	}
}

// loadDump reads a telemetry ring dump written by vtsim -telemetry.
func loadDump(path string) (*telemetry.Dump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d telemetry.Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(d.GPU) == 0 {
		return nil, fmt.Errorf("%s: dump has no windows", path)
	}
	return &d, nil
}

// diffRings compares two ring dumps phase by phase: both GPU rings are
// rebucketed onto a common grid of at most 16 spans (each covering the
// same fraction of its run, so runs of different lengths still align by
// phase), then every bucket's IPC, swap, and stall-mix deltas print, and
// the bucket with the largest IPC swing is called out.
func diffRings(pathA, pathB string) error {
	a, err := loadDump(pathA)
	if err != nil {
		return err
	}
	b, err := loadDump(pathB)
	if err != nil {
		return err
	}
	if a.Kernel != b.Kernel {
		fmt.Printf("warning: comparing different kernels (%s vs %s)\n\n", a.Kernel, b.Kernel)
	}
	fmt.Printf("a: %s under %s — %d cycles, %d windows\n", a.Kernel, a.Policy, a.Cycles, len(a.GPU))
	fmt.Printf("b: %s under %s — %d cycles, %d windows\n\n", b.Kernel, b.Policy, b.Cycles, len(b.GPU))

	n := len(a.GPU)
	if len(b.GPU) < n {
		n = len(b.GPU)
	}
	if n > 16 {
		n = 16
	}
	wa := telemetry.Rebucket(a.GPU, n)
	wb := telemetry.Rebucket(b.GPU, n)
	if len(wb) < len(wa) {
		wa = wa[:len(wb)]
	} else {
		wb = wb[:len(wa)]
	}

	memPct := func(w telemetry.Window) float64 {
		total := w.SlotIssued + w.SlotStallMem + w.SlotStallALU +
			w.SlotStallBar + w.SlotStallStr + w.SlotIdle
		if total == 0 {
			return 0
		}
		return 100 * float64(w.SlotStallMem) / float64(total)
	}
	fmt.Printf("%-5s %-13s %-13s %8s %9s %9s %10s\n",
		"phase", "a cycles", "b cycles", "ΔIPC", "Δswaps", "Δmem%", "Δwarps")
	worst, worstDelta := -1, 0.0
	for i := range wa {
		x, y := wa[i], wb[i]
		dIPC := y.IPC() - x.IPC()
		if d := dIPC; d < 0 {
			d = -d
			if d > worstDelta {
				worst, worstDelta = i, d
			}
		} else if d > worstDelta {
			worst, worstDelta = i, d
		}
		fmt.Printf("%-5d %-13s %-13s %+8.2f %+9d %+9.1f %+10d\n", i,
			fmt.Sprintf("%d..%d", x.Cycle-x.Cycles, x.Cycle),
			fmt.Sprintf("%d..%d", y.Cycle-y.Cycles, y.Cycle),
			dIPC, y.SwapsOut-x.SwapsOut, memPct(y)-memPct(x),
			y.ActiveWarps-x.ActiveWarps)
	}
	if worst >= 0 {
		x, y := wa[worst], wb[worst]
		fmt.Printf("\nlargest IPC swing: phase %d (a %d..%d vs b %d..%d): %.2f -> %.2f\n",
			worst, x.Cycle-x.Cycles, x.Cycle, y.Cycle-y.Cycles, y.Cycle, x.IPC(), y.IPC())
	}
	return nil
}

func load(path string) (*gpu.Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r gpu.Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vtdiff: "+format+"\n", args...)
	os.Exit(1)
}
