// Command vtdiff compares two simulation results saved as JSON by
// `vtsim -json`, printing the relative change of every headline metric —
// the quick way to quantify a configuration or policy change.
//
// Usage:
//
//	vtsim -workload nw -json > base.json
//	vtsim -workload nw -policy vt -json > vt.json
//	vtdiff base.json vt.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/gpu"
)

func main() {
	flag.Parse()
	if flag.NArg() != 2 {
		fatalf("usage: vtdiff a.json b.json")
	}
	a, err := load(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	b, err := load(flag.Arg(1))
	if err != nil {
		fatalf("%v", err)
	}
	if a.Kernel != b.Kernel {
		fmt.Printf("warning: comparing different kernels (%s vs %s)\n\n", a.Kernel, b.Kernel)
	}

	fmt.Printf("%-24s %14s %14s %10s\n", "metric", a.Policy.String(), b.Policy.String(), "change")
	row := func(name string, va, vb float64) {
		change := "-"
		if va != 0 {
			change = fmt.Sprintf("%+.1f%%", (vb/va-1)*100)
		}
		fmt.Printf("%-24s %14.3f %14.3f %10s\n", name, va, vb, change)
	}
	row("cycles", float64(a.Cycles), float64(b.Cycles))
	row("IPC", a.IPC(), b.IPC())
	row("active warps/SM", a.AvgActiveWarpsPerSM(), b.AvgActiveWarpsPerSM())
	row("resident warps/SM", a.AvgResidentWarpsPerSM(), b.AvgResidentWarpsPerSM())
	row("SIMD efficiency", a.SIMDEfficiency(), b.SIMDEfficiency())
	row("L1 hit rate", a.Mem.L1HitRate(), b.Mem.L1HitRate())
	row("L2 hit rate", a.Mem.L2HitRate(), b.Mem.L2HitRate())
	row("DRAM reads", float64(a.Mem.DRAMReads), float64(b.Mem.DRAMReads))
	row("swaps out", float64(a.VT.SwapsOut), float64(b.VT.SwapsOut))
	if a.Cycles > 0 && b.Cycles > 0 {
		fmt.Printf("\nspeedup (a/b cycles): %.3fx\n", float64(a.Cycles)/float64(b.Cycles))
	}
}

func load(path string) (*gpu.Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r gpu.Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vtdiff: "+format+"\n", args...)
	os.Exit(1)
}
