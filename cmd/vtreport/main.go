// Command vtreport prints the static occupancy analysis for the workload
// suite (or one workload): how many CTAs fit under each hardware
// constraint, which limit binds, and how much thread-level parallelism the
// scheduling limit strands — the paper's motivating analysis.
//
// Usage:
//
//	vtreport               # whole suite
//	vtreport -workload nw  # one workload, with the per-constraint breakdown
package main

import (
	"flag"
	"fmt"
	"os"

	vtsim "repro"
	"repro/internal/cta"
	"repro/internal/kernels"
	"repro/internal/stats"
)

func main() {
	var (
		workload = flag.String("workload", "", "analyze one workload in detail")
		scale    = flag.Int("scale", 1, "grid size multiplier")
	)
	flag.Parse()

	cfg := vtsim.GTX480()

	if *workload != "" {
		w, err := kernels.Build(*workload, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vtreport: %v\n", err)
			os.Exit(1)
		}
		o := cta.ComputeOccupancy(w.Launch, &cfg)
		fp := o.Footprint
		t := stats.NewTable(fmt.Sprintf("%s occupancy on %s", w.Name, cfg.Name),
			"constraint", "per-CTA demand", "hardware", "max CTAs")
		t.Rowf("CTA slots", 1, cfg.MaxCTAsPerSM, o.ByCTASlots)
		t.Rowf("warp slots", fp.Warps, cfg.MaxWarpsPerSM, o.ByWarps)
		t.Rowf("thread slots", fp.Threads, cfg.MaxThreadsPerSM, o.ByThreads)
		t.Rowf("registers", fp.Regs, cfg.RegFileSize, o.ByRegs)
		t.Rowf("shared memory", fp.SMem, cfg.SharedMemPerSM, o.BySMem)
		t.Note("binding limiter: %s -> %d CTAs/SM; capacity alone allows %d",
			o.Limiter, o.CTAs, o.CapacityCTAs)
		if o.SchedulingLimited() {
			t.Note("scheduling-limited: Virtual Thread can keep %dx more CTAs resident",
				o.CapacityCTAs/max(o.CTAs, 1))
		} else {
			t.Note("capacity-limited: Virtual Thread has no residency headroom here")
		}
		t.Fprint(os.Stdout)
		return
	}

	t := stats.NewTable("suite occupancy on "+cfg.Name,
		"workload", "limiter", "CTAs/SM", "capacity-CTAs", "sched-limited")
	for _, w := range kernels.Suite(*scale) {
		o := cta.ComputeOccupancy(w.Launch, &cfg)
		t.Rowf(w.Name, o.Limiter.String(), o.CTAs, o.CapacityCTAs,
			fmt.Sprintf("%v", o.SchedulingLimited()))
	}
	t.Fprint(os.Stdout)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
