// Command vtreport prints the static occupancy analysis for the workload
// suite (or one workload): how many CTAs fit under each hardware
// constraint, which limit binds, and how much thread-level parallelism the
// scheduling limit strands — the paper's motivating analysis. With -rings
// it instead renders the timeline summary of a telemetry ring dump
// (vtsim -telemetry): the occupancy ramp and the swap-rate phases.
//
// Usage:
//
//	vtreport                    # whole suite
//	vtreport -workload nw       # one workload, with the per-constraint breakdown
//	vtreport -rings dump.json   # timeline summary of a telemetry ring dump
//	vtreport -store dir         # result-store inventory + integrity audit
//	vtreport -store p -mirror m # ... across both replica sides
//	vtreport -tracepath trace.json    # critical path + stage breakdown of a sweep trace
//	vtreport -tracepath storedir      # ... loaded from the store's vtart-sweeptrace artifact
//	vtreport -tracepath t -perfetto p # ... also rendered for chrome://tracing
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	vtsim "repro"
	"repro/internal/cta"
	"repro/internal/harness"
	"repro/internal/kernels"
	"repro/internal/resultstore"
	"repro/internal/stats"
	"repro/internal/sweepobs"
	"repro/internal/telemetry"
)

func main() {
	var (
		workload  = flag.String("workload", "", "analyze one workload in detail")
		scale     = flag.Int("scale", 1, "grid size multiplier")
		rings     = flag.String("rings", "", "render the timeline summary of a telemetry ring dump (vtsim -telemetry)")
		storeDir  = flag.String("store", "", "query a result store: per-kind inventory, replica sides, and a read-only integrity audit")
		mirror    = flag.String("mirror", "", "with -store or -tracepath, also use this mirror side")
		tracePath = flag.String("tracepath", "", "analyze a sweep trace (vtbench -sweeptrace file, or a store directory holding the trace artifact): critical path, per-stage breakdown, stragglers")
		perfetto  = flag.String("perfetto", "", "with -tracepath, also render the trace for chrome://tracing / ui.perfetto.dev into this file")
	)
	flag.Parse()

	if *rings != "" {
		if err := ringsReport(*rings); err != nil {
			fmt.Fprintf(os.Stderr, "vtreport: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *tracePath != "" {
		if err := traceReport(*tracePath, *mirror, *perfetto); err != nil {
			fmt.Fprintf(os.Stderr, "vtreport: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *storeDir != "" {
		if err := storeReport(*storeDir, *mirror); err != nil {
			fmt.Fprintf(os.Stderr, "vtreport: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := vtsim.GTX480()

	if *workload != "" {
		w, err := kernels.Build(*workload, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vtreport: %v\n", err)
			os.Exit(1)
		}
		o := cta.ComputeOccupancy(w.Launch, &cfg)
		fp := o.Footprint
		t := stats.NewTable(fmt.Sprintf("%s occupancy on %s", w.Name, cfg.Name),
			"constraint", "per-CTA demand", "hardware", "max CTAs")
		t.Rowf("CTA slots", 1, cfg.MaxCTAsPerSM, o.ByCTASlots)
		t.Rowf("warp slots", fp.Warps, cfg.MaxWarpsPerSM, o.ByWarps)
		t.Rowf("thread slots", fp.Threads, cfg.MaxThreadsPerSM, o.ByThreads)
		t.Rowf("registers", fp.Regs, cfg.RegFileSize, o.ByRegs)
		t.Rowf("shared memory", fp.SMem, cfg.SharedMemPerSM, o.BySMem)
		t.Note("binding limiter: %s -> %d CTAs/SM; capacity alone allows %d",
			o.Limiter, o.CTAs, o.CapacityCTAs)
		if o.SchedulingLimited() {
			t.Note("scheduling-limited: Virtual Thread can keep %dx more CTAs resident",
				o.CapacityCTAs/max(o.CTAs, 1))
		} else {
			t.Note("capacity-limited: Virtual Thread has no residency headroom here")
		}
		t.Fprint(os.Stdout)
		return
	}

	t := stats.NewTable("suite occupancy on "+cfg.Name,
		"workload", "limiter", "CTAs/SM", "capacity-CTAs", "sched-limited")
	for _, w := range kernels.Suite(*scale) {
		o := cta.ComputeOccupancy(w.Launch, &cfg)
		t.Rowf(w.Name, o.Limiter.String(), o.CTAs, o.CapacityCTAs,
			fmt.Sprintf("%v", o.SchedulingLimited()))
	}
	t.Fprint(os.Stdout)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// storeReport opens the result store read-mostly (opening replays the
// index and recovers any interrupted transaction) and prints the
// per-kind inventory, the replica sides, and a Verify audit — without
// modifying any object (vtbench -repair heals).
func storeReport(dir, mirror string) error {
	st, err := resultstore.Open(resultstore.Options{Dir: dir, Mirror: mirror})
	if err != nil {
		return err
	}
	defer st.Close()

	t := stats.NewTable("result store inventory: "+dir,
		"kind", "objects", "legacy", "segmented", "bytes")
	for _, inv := range st.Inventory() {
		t.Rowf(string(inv.Kind), inv.Objects, inv.Legacy, inv.Segmented, inv.Bytes)
	}
	t.Fprint(os.Stdout)
	fmt.Println()

	s := stats.NewTable("replica sides", "role", "directory", "indexed", "failed")
	for _, sd := range st.Sides() {
		s.Rowf(sd.Role, sd.Dir, sd.Indexed, fmt.Sprintf("%v", sd.Failed))
	}
	s.Fprint(os.Stdout)
	fmt.Println()

	rep := st.Verify()
	fmt.Printf("audit: %d objects checked, %d healthy, %d legacy (pre-store, unverified)\n",
		rep.Checked, rep.Healthy, rep.Legacy)
	for _, d := range rep.Damaged {
		fmt.Printf("damaged: %s\n", d)
	}
	for _, u := range rep.Unrecoverable {
		fmt.Printf("unrecoverable: %s\n", u)
	}
	if len(rep.Damaged) > 0 || len(rep.Unrecoverable) > 0 {
		return fmt.Errorf("store has %d damaged and %d unrecoverable objects; run vtbench -store %s -repair",
			len(rep.Damaged), len(rep.Unrecoverable), dir)
	}
	fmt.Println("store is healthy")
	return nil
}

// loadSweepDump reads a sweep trace from either a vtbench -sweeptrace
// JSON file or a result-store directory holding the vtart-sweeptrace
// artifact.
func loadSweepDump(path, mirror string) (*sweepobs.Dump, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return harness.LoadSweepTrace(path, mirror)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d sweepobs.Dump
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if d.SchemaVersion != sweepobs.DumpSchemaVersion {
		return nil, fmt.Errorf("%s: sweep trace schema %d (want %d)", path, d.SchemaVersion, sweepobs.DumpSchemaVersion)
	}
	return &d, nil
}

// traceReport prints the critical-path analysis of one sweep trace: the
// chain of jobs that determined the wall-clock, the per-stage self-time
// breakdown, and any straggler jobs far above the median duration.
func traceReport(path, mirror, perfOut string) error {
	d, err := loadSweepDump(path, mirror)
	if err != nil {
		return err
	}
	a := sweepobs.Analyze(d)
	if a == nil {
		return fmt.Errorf("%s: trace has no spans", path)
	}

	fmt.Printf("sweep trace: %d spans, %d jobs, %d worker slots, %.3fs wall (started %s)\n",
		len(d.Spans), a.Jobs, a.Workers, a.WallSeconds, d.StartTime)
	fmt.Printf("span coverage: %.1f%% of wall-clock inside plan/job spans\n\n", 100*a.Coverage)

	fmt.Printf("critical path (%.3fs — the chain that set the wall-clock):\n", a.PathSeconds)
	for _, s := range a.Path {
		fmt.Println("  " + sweepobs.FormatStep(s))
	}
	fmt.Println()

	t := stats.NewTable("stage breakdown (self time across all workers)",
		"stage", "count", "seconds", "share")
	var total float64
	for _, b := range a.Breakdown {
		total += b.Seconds
	}
	for _, b := range a.Breakdown {
		share := "-"
		if total > 0 {
			share = fmt.Sprintf("%.1f%%", 100*b.Seconds/total)
		}
		t.Rowf(b.Stage, b.Count, stats.F3(b.Seconds), share)
	}
	if a.Workers > 1 {
		t.Note("totals span %d concurrent worker slots; divide by %d for an average-per-slot view",
			a.Workers, a.Workers)
	}
	t.Fprint(os.Stdout)

	if len(a.Stragglers) > 0 {
		fmt.Println()
		s := stats.NewTable("stragglers (jobs > 2x the median duration)",
			"job", "seconds", "x median")
		for _, st := range a.Stragglers {
			s.Rowf(st.Workload+"/"+st.Variant, stats.F3(st.Seconds), fmt.Sprintf("%.1f", st.Ratio))
		}
		s.Fprint(os.Stdout)
	}

	if perfOut != "" {
		f, err := os.Create(perfOut)
		if err != nil {
			return err
		}
		werr := sweepobs.WritePerfetto(f, d)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("perfetto: %v", werr)
		}
		fmt.Printf("\nwrote %s (open in chrome://tracing or ui.perfetto.dev)\n", perfOut)
	}
	return nil
}

// loadDump reads a telemetry ring dump written by vtsim -telemetry.
func loadDump(path string) (*telemetry.Dump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d telemetry.Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(d.GPU) == 0 {
		return nil, fmt.Errorf("%s: dump has no windows", path)
	}
	return &d, nil
}

// ringsReport renders the per-workload timeline summary of one ring
// dump: when occupancy finished ramping, and how the run divides into
// swap-rate phases (idle / low / high relative to the peak rate).
func ringsReport(path string) error {
	d, err := loadDump(path)
	if err != nil {
		return err
	}
	fmt.Printf("telemetry timeline: %s under %s — %d SMs, %d cycles, %d windows\n\n",
		d.Kernel, d.Policy, d.NumSMs, d.Cycles, len(d.GPU))

	// Occupancy ramp: the first window where active warps reach 90% of
	// their peak marks the end of the launch ramp.
	peakWarps := 0
	for _, w := range d.GPU {
		if w.ActiveWarps > peakWarps {
			peakWarps = w.ActiveWarps
		}
	}
	rampEnd := int64(-1)
	for _, w := range d.GPU {
		if w.ActiveWarps*10 >= peakWarps*9 {
			rampEnd = w.Cycle
			break
		}
	}
	if rampEnd >= 0 && d.Cycles > 0 {
		fmt.Printf("occupancy ramp: peak %d active warps, reached 90%% by cycle %d (%.1f%% of the run)\n",
			peakWarps, rampEnd, 100*float64(rampEnd)/float64(d.Cycles))
	}

	// Swap-rate phases: consecutive windows with the same level (idle:
	// no swaps; high: at least half the peak per-cycle swap rate; low:
	// in between) collapse into one phase row.
	level := func(w telemetry.Window) string {
		if w.SwapsOut == 0 {
			return "idle"
		}
		return "low"
	}
	peakRate := 0.0
	for _, w := range d.GPU {
		if w.Cycles > 0 {
			if r := float64(w.SwapsOut) / float64(w.Cycles); r > peakRate {
				peakRate = r
			}
		}
	}
	if peakRate > 0 {
		level = func(w telemetry.Window) string {
			switch r := float64(w.SwapsOut) / float64(w.Cycles); {
			case w.SwapsOut == 0:
				return "idle"
			case r >= peakRate/2:
				return "high"
			default:
				return "low"
			}
		}
	}
	type phase struct {
		start, end telemetry.Window
		level      string
		agg        telemetry.Window
	}
	var phases []phase
	for _, w := range d.GPU {
		lv := level(w)
		if n := len(phases); n > 0 && phases[n-1].level == lv {
			phases[n-1].end = w
			phases[n-1].agg = telemetry.MergeWindows(phases[n-1].agg, w)
		} else {
			phases = append(phases, phase{start: w, end: w, level: lv, agg: w})
		}
	}
	t := stats.NewTable("swap-rate phases",
		"cycles", "level", "swaps out/in", "IPC", "act warps", "res warps", "swaps/kcyc")
	for _, p := range phases {
		rate := 0.0
		if p.agg.Cycles > 0 {
			rate = 1000 * float64(p.agg.SwapsOut) / float64(p.agg.Cycles)
		}
		t.Rowf(fmt.Sprintf("%d..%d", p.start.Cycle-p.start.Cycles, p.end.Cycle),
			p.level, fmt.Sprintf("%d/%d", p.agg.SwapsOut, p.agg.SwapsIn),
			stats.F3(p.agg.IPC()), p.end.ActiveWarps, p.end.ResidentWarps,
			fmt.Sprintf("%.2f", rate))
	}
	t.Fprint(os.Stdout)

	// Bounded timeline table: the ring rebucketed to at most 16 rows.
	ws := telemetry.Rebucket(d.GPU, 16)
	t = stats.NewTable("timeline (rebucketed)",
		"cycles", "IPC", "act warps", "res warps", "swaps out", "L1 hit", "ctx bytes")
	for i, w := range ws {
		hit := "-"
		if w.L1Accesses > 0 {
			hit = stats.F3(float64(w.L1Hits) / float64(w.L1Accesses))
		}
		t.Rowf(fmt.Sprintf("%d..%d", w.Cycle-w.Cycles, w.Cycle), stats.F3(w.IPC()),
			w.ActiveWarps, w.ResidentWarps, w.SwapsOut, hit, w.CtxBytes)
		_ = i
	}
	if len(d.SwapLatency) > 0 {
		// Buckets are emitted in ascending order, so the range is just
		// first.Lo .. last.Hi.
		var n int64
		for _, b := range d.SwapLatency {
			n += b.Count
		}
		lo := d.SwapLatency[0].Lo
		if hi := d.SwapLatency[len(d.SwapLatency)-1].Hi; hi == -1 {
			t.Note("swap latency: %d swaps, from %d cycles up (unbounded top bucket)", n, lo)
		} else {
			t.Note("swap latency: %d swaps across [%d..%d] cycles", n, lo, hi)
		}
	}
	if d.SpansDropped > 0 {
		t.Note("warning: %d spans dropped (raise telemetry MaxSpans)", d.SpansDropped)
	}
	t.Fprint(os.Stdout)
	return nil
}
