// Command vtbench regenerates the paper's evaluation: every table and
// figure has a named experiment that runs the required simulations and
// prints the corresponding rows/series.
//
// Usage:
//
//	vtbench                    # run everything (takes minutes)
//	vtbench -run fig-speedup   # one experiment
//	vtbench -list              # list experiments
//	vtbench -dilute 10         # shrink grids 10x for a quick pass
//	vtbench -json BENCH_engine.json   # per-experiment wall time + simcycles/s
//	vtbench -cpuprofile cpu.pprof     # profile, labeled by experiment/workload/variant
//	vtbench -faildir failures         # write repro bundles for failed runs
//	vtbench -store c -resume          # continue an interrupted/failed sweep
//	vtbench -store c -mirror m        # replicate the result store to a second directory
//	vtbench -store c -repair          # audit + heal the store, then exit
//	vtbench -monitor :8080            # live sweep progress (HTML, /status, /metrics, /debug/pprof)
//	vtbench -sweeptrace trace.json    # record the sweep-lifecycle span tree (vtreport -tracepath)
//	vtbench -sweepperfetto ui.json    # ... also rendered for chrome://tracing / ui.perfetto.dev
//	vtbench -metricsdump metrics.txt  # write the final Prometheus exposition on exit
//	vtbench -telemetry                # collect per-run telemetry (totals in -json)
//	vtbench -checkpoint               # prefix-fork sweep points that share a run prefix
//	vtbench -checkpoint -forkcycle N  # pin the donor's capture to cycle >= N
//	vtbench -worker http://host:7077  # join a vtsweepd fleet: pull jobs, stream results back
//	vtbench -worker URL -slots 4      # ... holding four jobs at a time
//
// Exit codes: 0 on success, 1 on a fatal setup error, 3 when the sweep
// completed but one or more runs failed (repro bundles in -faildir, the
// completion journal marks them for -resume). On SIGINT/SIGTERM the
// sweep drains in-flight runs, flushes the journal and store, and exits
// 128+signum (130/143); a second signal kills immediately.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	vtsim "repro"
	"repro/internal/fabric"
	"repro/internal/faultinject"
	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/resultstore"
	"repro/internal/stats"
	"repro/internal/sweepobs"
)

// expReport is one experiment's row in the -json output.
type expReport struct {
	ID              string  `json:"id"`
	WallSeconds     float64 `json:"wall_seconds"`
	RunsRequested   int     `json:"runs_requested"`
	RunsExecuted    int     `json:"runs_executed"`
	CacheHits       int     `json:"cache_hits"`
	SimCycles       int64   `json:"sim_cycles"`
	SimCyclesPerSec float64 `json:"simcycles_per_sec"`
	Error           string  `json:"error,omitempty"`
}

// benchReportSchemaVersion identifies the -json layout. Consumers
// (cmd/benchcheck) decode with encoding/json, which ignores unknown
// fields, so adding fields never breaks old baselines; bump this only
// for changes that alter the meaning of existing fields.
//
// v3: with -checkpoint, sim_cycles counts only cycles actually simulated
// — forked runs add their post-fork suffix alone (the skipped prefix is
// reported in prefix_cycles_saved) — so simcycles_per_sec is not
// comparable to a v2 baseline produced without forking.
//
// v4: with -sample, sim_cycles includes extrapolated cycles (the portion
// is reported in extrapolated_cycles) and every per-run cycle count
// carries the error bound reported in max_error_bound — so neither
// sim_cycles nor simcycles_per_sec is comparable to an exact baseline.
//
// v5: adds the result-store counters (store_hits/store_misses/
// store_repairs/store_retries). Purely additive — every v4 field keeps
// its meaning — but cache_hits on a -store sweep now includes hits the
// store healed from a mirror, which a v4 consumer could not distinguish.
const benchReportSchemaVersion = 5

// benchReport is the top-level -json document.
type benchReport struct {
	SchemaVersion   int     `json:"schema_version"`
	Date            string  `json:"date"`
	GoVersion       string  `json:"go_version"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	Scale           int     `json:"scale"`
	Dilute          int     `json:"dilute"`
	Workers         int     `json:"workers"`
	TotalWallSec    float64 `json:"total_wall_seconds"`
	RunsRequested   int     `json:"runs_requested"`
	RunsExecuted    int     `json:"runs_executed"`
	CacheHits       int     `json:"cache_hits"`
	SimCycles       int64   `json:"sim_cycles"`
	SimCyclesPerSec float64 `json:"simcycles_per_sec"`
	// Supervisor outcome counters (zero on a clean sweep).
	RunsRetried   int `json:"runs_retried,omitempty"`
	RunsDegraded  int `json:"runs_degraded,omitempty"`
	RunsFailed    int `json:"runs_failed,omitempty"`
	ResumedFailed int `json:"resumed_failed,omitempty"`
	// Telemetry aggregates (-telemetry sweeps only).
	TelemetryWindows int64 `json:"telemetry_windows,omitempty"`
	TelemetrySpans   int64 `json:"telemetry_spans,omitempty"`
	// Prefix-fork counters (-checkpoint sweeps only).
	CheckpointsCaptured int   `json:"checkpoints_captured,omitempty"`
	CheckpointHits      int   `json:"checkpoint_hits,omitempty"`
	CheckpointMisses    int   `json:"checkpoint_misses,omitempty"`
	PrefixCyclesSaved   int64 `json:"prefix_cycles_saved,omitempty"`
	// Sampled-simulation counters (-sample sweeps only). Sampling is the
	// "detailed:fastforward:warmup" configuration; extrapolated_cycles is
	// the portion of sim_cycles that was extrapolated rather than
	// simulated; max_error_bound is the largest per-run reported bound on
	// the fractional cycle error.
	Sampling           string  `json:"sampling,omitempty"`
	SampledRuns        int     `json:"sampled_runs,omitempty"`
	SampledSpans       int64   `json:"sampled_spans,omitempty"`
	ExtrapolatedCycles int64   `json:"extrapolated_cycles,omitempty"`
	FunctionalInstrs   int64   `json:"functional_instrs,omitempty"`
	MaxErrorBound      float64 `json:"max_error_bound,omitempty"`
	// Result-store counters (-store/-cachedir sweeps only; see
	// internal/resultstore). store_hits/store_misses count verified reads;
	// store_repairs counts objects healed bit-identically from the mirror;
	// store_retries counts transient store I/O errors absorbed by the
	// bounded retry.
	StoreHits    int `json:"store_hits,omitempty"`
	StoreMisses  int `json:"store_misses,omitempty"`
	StoreRepairs int `json:"store_repairs,omitempty"`
	StoreRetries int `json:"store_retries,omitempty"`

	Experiments []expReport `json:"experiments"`
}

func main() { os.Exit(realMain()) }

// realMain carries the exit code out past the deferred cleanups (an
// os.Exit in the body would skip profile flushes and file closes).
func realMain() int {
	var (
		run        = flag.String("run", "all", "experiment ID or \"all\"")
		scale      = flag.Int("scale", 1, "grid size multiplier")
		dilute     = flag.Int("dilute", 1, "divide grid sizes by this factor (quick passes)")
		workers    = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		out        = flag.String("out", "", "write output to file instead of stdout")
		csvDir     = flag.String("csv", "", "also write every table as CSV into this directory")
		jsonPath   = flag.String("json", "", "write per-experiment wall time and simcycles/s to this file")
		cacheDir   = flag.String("cachedir", "", "persist memoized run results in this directory across invocations (alias of -store)")
		storeDir   = flag.String("store", "", "result-store directory: cached results, checkpoints, and the completion journal commit here transactionally")
		mirrorDir  = flag.String("mirror", "", "replicate the result store to this second directory; corrupt objects heal from it on read")
		repair     = flag.Bool("repair", false, "audit the result store (and mirror), heal damaged objects from a healthy replica, print a report, and exit")
		failDir    = flag.String("faildir", "failures", "write a JSON repro bundle per failed run into this directory (\"\" disables)")
		timeout    = flag.Duration("timeout", 0, "wall-clock deadline per simulation (0 = none)")
		checkInv   = flag.Bool("checkinvariants", false, "run every simulation with the conservation-invariant checker")
		injectSpec = flag.String("inject", "", "inject a deterministic fault: workload[/variant]@cycle:kind (kind: panic, panic-once, corrupt, hang=<dur>)")
		resume     = flag.Bool("resume", false, "resume an interrupted or partially failed sweep from the -cachedir journal")
		telemetry  = flag.Bool("telemetry", false, "attach a telemetry collector to every executed run (window/span totals land in -json)")
		checkpoint = flag.Bool("checkpoint", false, "prefix-fork sweep points that differ only in late-consumed parameters (bit-identical results, shared prefix simulated once)")
		sample     = flag.String("sample", "", "interval/sampled simulation as detailed:fastforward[:warmup] cycles; cycle counts become extrapolations within a reported error bound")
		forkCycle  = flag.Int64("forkcycle", 0, "with -checkpoint, pin the donor's capture to the first cycle >= N (0 = adaptive periodic capture)")
		monitor    = flag.String("monitor", "", "serve live sweep progress (HTML, /status JSON, /metrics, /debug/pprof) on this address, e.g. :8080")
		sweeptrace = flag.String("sweeptrace", "", "write the sweep-lifecycle span dump (JSON) to this file; with -store it also commits as a store artifact")
		sweepPerf  = flag.String("sweepperfetto", "", "also render the sweep trace for chrome://tracing / ui.perfetto.dev into this file")
		metricsOut = flag.String("metricsdump", "", "write the final Prometheus text exposition to this file on exit")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		list       = flag.Bool("list", false, "list experiments and exit")

		workerURL = flag.String("worker", "", "run as a sweep-fabric worker pulling jobs from this vtsweepd coordinator URL (e.g. http://host:7077)")
		workerID  = flag.String("workerid", "", "worker name for leases and the fleet dashboard (default <host>-<pid>)")
		slots     = flag.Int("slots", 0, "concurrent jobs a -worker holds (0 = GOMAXPROCS)")
		dieAfter  = flag.Int("worker-die-after", 0, "fabric crash drill: exit(7) just before reporting the Nth completion (0 = never)")
	)
	flag.Parse()

	if *list {
		for _, e := range vtsim.Experiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return 0
	}

	// Graceful shutdown: the first SIGINT/SIGTERM cancels the sweep
	// context — no new jobs dispatch, in-flight runs drain, journal and
	// store transactions flush through the normal exit path — and a
	// second signal falls back to the default disposition (kill).
	ctx, stopSignals := signalContext("vtbench")
	defer stopSignals()

	// -store is the preferred name for the directory the transactional
	// result store manages; -cachedir remains as the historical alias.
	if *storeDir != "" && *cacheDir != "" && *storeDir != *cacheDir {
		return fatalf("-store and -cachedir name different directories; use one")
	}
	if *storeDir == "" {
		*storeDir = *cacheDir
	}
	if *mirrorDir != "" && *storeDir == "" {
		return fatalf("-mirror needs -store: the mirror replicates a primary store")
	}

	if *repair {
		if *storeDir == "" {
			return fatalf("-repair needs -store")
		}
		return runRepair(*storeDir, *mirrorDir)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fatalf("%v", err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fatalf("%v", err)
		}
		stats.SetCSVDir(*csvDir)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fatalf("%v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	p := vtsim.DefaultExperimentParams()
	p.Scale = *scale
	p.Dilute = *dilute
	p.Workers = *workers
	p.CacheDir = *storeDir
	p.MirrorDir = *mirrorDir
	p.FailDir = *failDir
	p.RunTimeout = *timeout
	p.CheckInvariants = *checkInv
	p.Telemetry = *telemetry
	p.Checkpoint = *checkpoint
	p.ForkCycle = *forkCycle
	p.Ctx = ctx

	if *sample != "" {
		so, err := gpu.ParseSampling(*sample)
		if err != nil {
			return fatalf("%v", err)
		}
		if so.Enabled() {
			// Sampling extrapolates cycle counts; checkpoint forking and the
			// invariant checker both assume exact cycle-accurate execution.
			if *checkpoint {
				return fatalf("-sample is incompatible with -checkpoint: forked prefixes must be bit-identical, sampled runs are extrapolations")
			}
			if *checkInv {
				return fatalf("-sample is incompatible with -checkinvariants: the checker audits per-cycle conservation, which fast-forward spans skip")
			}
		}
		p.Sampling = so
	}

	// Sweep observability: every invocation gets its own Monitor (nothing
	// leaks through the process-global default), and any flag that
	// consumes spans turns the tracer on. With all of them off, p.Trace
	// stays nil and every tracer hook is a nil-receiver no-op — the
	// contract behind the CI overhead gate.
	mon := harness.NewMonitor()
	p.Monitor = mon
	var tracer *sweepobs.Tracer
	if *sweeptrace != "" || *sweepPerf != "" || *metricsOut != "" || *monitor != "" {
		tracer = sweepobs.New()
		mon.SetTracer(tracer)
		p.Trace = tracer
	}

	stopMonitor := func() {}
	if *monitor != "" {
		// Listen synchronously so a bad address or occupied port is a
		// fatal setup error, not a silently dead goroutine.
		ln, err := net.Listen("tcp", *monitor)
		if err != nil {
			return fatalf("monitor: %v", err)
		}
		fmt.Fprintf(os.Stderr, "vtbench: monitor on http://%s/\n", ln.Addr())
		srv := &http.Server{Handler: mon.Handler()}
		serveErr := make(chan error, 1)
		go func() { serveErr <- srv.Serve(ln) }()
		var once sync.Once
		stopMonitor = func() {
			once.Do(func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				if err := srv.Shutdown(ctx); err != nil {
					srv.Close()
				}
				if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
					fmt.Fprintf(os.Stderr, "vtbench: monitor server: %v\n", err)
				}
			})
		}
		defer stopMonitor()
	}

	if *injectSpec != "" {
		sp, err := faultinject.Parse(*injectSpec)
		if err != nil {
			return fatalf("%v", err)
		}
		p.Inject = sp
	}
	if *workerURL != "" {
		code := runWorkerMode(ctx, p, *workerURL, *workerID, *slots, *dieAfter)
		stopMonitor()
		return code
	}

	if *resume && *storeDir == "" {
		return fatalf("-resume needs -store: the journal and the cached results live there")
	}
	if *storeDir != "" {
		meta := harness.JournalMeta{Scale: *scale, Dilute: *dilute, Config: p.Config.Name, Sampling: p.Sampling.String()}
		jl, err := harness.OpenJournal(filepath.Join(*storeDir, harness.JournalFileName), meta, *resume)
		if err != nil {
			return fatalf("%v", err)
		}
		defer jl.Close()
		p.Journal = jl
		p.Resume = *resume
		if *mirrorDir != "" {
			// Seed the mirror's journal header so store transactions have a
			// valid journal to append entry lines to, making a failed-over
			// mirror directory resumable on its own.
			if err := harness.EnsureJournalHeader(filepath.Join(*mirrorDir, harness.JournalFileName), meta); err != nil {
				return fatalf("mirror journal: %v", err)
			}
		}
		if *resume {
			ok, degraded, failed := jl.Summary()
			fmt.Fprintf(os.Stderr, "vtbench: resuming sweep: journal records %d ok, %d degraded, %d failed\n",
				ok, degraded, failed)
		}
	}

	var todo []vtsim.Experiment
	if *run == "all" {
		todo = vtsim.Experiments()
	} else {
		e, err := vtsim.GetExperiment(*run)
		if err != nil {
			return fatalf("%v", err)
		}
		todo = []vtsim.Experiment{e}
	}

	report := benchReport{
		SchemaVersion: benchReportSchemaVersion,
		Date:          time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Scale:         *scale,
		Dilute:        *dilute,
		Workers:       *workers,
	}
	exitCode := 0
	start := time.Now()
	for _, e := range todo {
		if *run == "all" {
			fmt.Fprintf(w, "### %s — %s\n", e.ID, e.Title)
			if e.Paper != "" {
				fmt.Fprintf(w, "paper: %s\n\n", e.Paper)
			}
		}
		before := vtsim.ExperimentMetrics()
		t0 := time.Now()
		expErr := vtsim.RunExperiment(e.ID, p, w)
		wall := time.Since(t0).Seconds()
		m := vtsim.ExperimentMetrics()
		r := expReport{
			ID:            e.ID,
			WallSeconds:   wall,
			RunsRequested: m.Requests - before.Requests,
			RunsExecuted:  m.Executed - before.Executed,
			CacheHits:     m.CacheHits - before.CacheHits,
			SimCycles:     m.SimCycles - before.SimCycles,
		}
		if wall > 0 {
			r.SimCyclesPerSec = float64(r.SimCycles) / wall
		}
		if expErr != nil {
			// The supervisor already bundled the failed runs; keep the
			// sweep going and report the incomplete experiment at the end.
			r.Error = expErr.Error()
			exitCode = 3
			fmt.Fprintf(os.Stderr, "vtbench: %s failed: %v\n", e.ID, expErr)
			fmt.Fprintf(w, "EXPERIMENT FAILED %s: %v\n\n", e.ID, expErr)
		}
		report.Experiments = append(report.Experiments, r)
	}
	report.TotalWallSec = time.Since(start).Seconds()
	m := vtsim.ExperimentMetrics()
	report.RunsRequested = m.Requests
	report.RunsExecuted = m.Executed
	report.CacheHits = m.CacheHits
	report.SimCycles = m.SimCycles
	report.RunsRetried = m.Retries
	report.RunsDegraded = m.Degraded
	report.RunsFailed = m.Failures
	report.ResumedFailed = m.ResumedFailed
	report.TelemetryWindows = m.TelemetryWindows
	report.TelemetrySpans = m.TelemetrySpans
	report.CheckpointsCaptured = m.CheckpointsCaptured
	report.CheckpointHits = m.CheckpointHits
	report.CheckpointMisses = m.CheckpointMisses
	report.PrefixCyclesSaved = m.PrefixCyclesSaved
	report.Sampling = p.Sampling.String()
	report.SampledRuns = m.SampledRuns
	report.SampledSpans = m.SampledSpans
	report.ExtrapolatedCycles = m.ExtrapolatedCycles
	report.FunctionalInstrs = m.FunctionalInstrs
	report.MaxErrorBound = m.MaxErrorBound
	report.StoreHits = m.StoreHits
	report.StoreMisses = m.StoreMisses
	report.StoreRepairs = m.StoreRepairs
	report.StoreRetries = m.StoreRetries
	if report.TotalWallSec > 0 {
		report.SimCyclesPerSec = float64(m.SimCycles) / report.TotalWallSec
	}
	fmt.Fprintf(w, "total wall time: %s\n", time.Duration(report.TotalWallSec*float64(time.Second)).Round(time.Millisecond))
	if *checkpoint && (m.CheckpointHits > 0 || m.CheckpointMisses > 0 || m.CheckpointsCaptured > 0) {
		fmt.Fprintf(w, "checkpoints: %d captured, %d forks, %d misses, %d prefix cycles saved\n",
			m.CheckpointsCaptured, m.CheckpointHits, m.CheckpointMisses, m.PrefixCyclesSaved)
	}
	if p.Sampling.Enabled() && m.SampledRuns > 0 {
		fmt.Fprintf(w, "sampling %s: %d sampled runs, %d spans, %d extrapolated cycles, %d functional instrs, max error bound %.2f%%\n",
			p.Sampling, m.SampledRuns, m.SampledSpans, m.ExtrapolatedCycles, m.FunctionalInstrs, 100*m.MaxErrorBound)
	}
	if m.StoreRepairs > 0 || m.StoreRetries > 0 {
		fmt.Fprintf(w, "result store: %d objects healed from the mirror, %d transient I/O retries\n",
			m.StoreRepairs, m.StoreRetries)
	}
	if m.Retries > 0 || m.Failures > 0 {
		fmt.Fprintf(w, "supervisor: %d safe-mode retries, %d degraded, %d failed runs\n",
			m.Retries, m.Degraded, m.Failures)
		if m.Failures > 0 && *failDir != "" {
			fmt.Fprintf(w, "supervisor: repro bundles in %s; re-run the failed jobs with -cachedir %s -resume\n",
				*failDir, *cacheDir)
		}
	}

	// The sweep is complete: drain in-flight monitor scrapes gracefully,
	// then flush the observability outputs from the final state.
	stopMonitor()
	if tracer != nil {
		if err := writeSweepObservability(p, mon, tracer, *sweeptrace, *sweepPerf, *metricsOut); err != nil {
			return fatalf("%v", err)
		}
	}

	if *jsonPath != "" {
		b, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return fatalf("json: %v", err)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			return fatalf("json: %v", err)
		}
		fmt.Fprintf(os.Stderr, "vtbench: wrote %s\n", *jsonPath)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fatalf("%v", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fatalf("memprofile: %v", err)
		}
	}
	return signalExitCode(exitCode)
}

// termSignal records the terminating signal number (130-100=SIGINT 2,
// SIGTERM 15) so the exit code preserves the conventional 128+signum.
var termSignal atomic.Int32

// signalContext returns a context canceled by the first SIGINT or
// SIGTERM. The handler then detaches, so a second signal takes the
// default disposition and kills the process immediately.
func signalContext(prog string) (context.Context, func()) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		s, ok := <-ch
		if !ok {
			return
		}
		if sn, isSys := s.(syscall.Signal); isSys {
			termSignal.Store(int32(sn))
		} else {
			termSignal.Store(int32(syscall.SIGINT))
		}
		fmt.Fprintf(os.Stderr, "%s: %v: draining in-flight work, flushing journal/store (signal again to kill)\n", prog, s)
		signal.Stop(ch)
		cancel()
	}()
	return ctx, func() { signal.Stop(ch); cancel() }
}

// signalExitCode maps a signal-initiated shutdown to 128+signum,
// preserving the sweep's own code otherwise.
func signalExitCode(code int) int {
	if sn := termSignal.Load(); sn != 0 {
		return 128 + int(sn)
	}
	return code
}

// runWorkerMode joins a vtsweepd fleet: pull jobs, execute them through
// the local supervised harness (with the local -store as cache), and
// stream outcomes back. Exit 0 when the sweep completes, 130/143 on
// graceful shutdown, 1 on error.
func runWorkerMode(ctx context.Context, p vtsim.ExperimentParams, url, id string, slots, dieAfter int) int {
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	cfg := fabric.WorkerConfig{Coordinator: url, ID: id, Slots: slots, Params: p}
	if dieAfter > 0 {
		cfg.BeforeComplete = func(n int) {
			if n >= dieAfter {
				fmt.Fprintf(os.Stderr, "vtbench: worker %s exiting before completion %d (-worker-die-after drill)\n", id, n)
				os.Exit(7)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "vtbench: worker %s pulling from %s (%d slots)\n",
		id, url, harness.ResolveWorkers(slots))
	err := fabric.RunWorker(ctx, cfg)
	switch {
	case err == nil:
		fmt.Fprintf(os.Stderr, "vtbench: worker %s: sweep complete\n", id)
		return 0
	case errors.Is(err, context.Canceled):
		return signalExitCode(0)
	default:
		return fatalf("worker: %v", err)
	}
}

// writeSweepObservability flushes the tracer's span dump to the
// requested outputs: the raw JSON dump (vtreport -tracepath input), the
// Perfetto rendering, the result-store artifact (when a store is
// attached), and the final Prometheus exposition.
func writeSweepObservability(p vtsim.ExperimentParams, mon *harness.Monitor, tracer *sweepobs.Tracer, tracePath, perfPath, metricsPath string) error {
	d := tracer.Dump()
	if tracePath != "" {
		b, err := json.MarshalIndent(d, "", " ")
		if err != nil {
			return fmt.Errorf("sweeptrace: %v", err)
		}
		if err := os.WriteFile(tracePath, append(b, '\n'), 0o644); err != nil {
			return fmt.Errorf("sweeptrace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "vtbench: wrote %s (%d spans)\n", tracePath, len(d.Spans))
	}
	if perfPath != "" {
		f, err := os.Create(perfPath)
		if err != nil {
			return fmt.Errorf("sweepperfetto: %v", err)
		}
		werr := sweepobs.WritePerfetto(f, d)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("sweepperfetto: %v", werr)
		}
		fmt.Fprintf(os.Stderr, "vtbench: wrote %s\n", perfPath)
	}
	if p.CacheDir != "" {
		// Best-effort: a trace that fails to commit must not fail a sweep
		// whose results committed fine.
		if err := harness.PersistSweepTrace(p, d); err != nil {
			fmt.Fprintf(os.Stderr, "vtbench: persist sweep trace: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "vtbench: sweep trace committed to store %s\n", p.CacheDir)
		}
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return fmt.Errorf("metricsdump: %v", err)
		}
		werr := mon.WriteMetrics(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("metricsdump: %v", werr)
		}
		fmt.Fprintf(os.Stderr, "vtbench: wrote %s\n", metricsPath)
	}
	return nil
}

// runRepair opens the result store, audits every object on every side,
// heals damaged copies bit-identically from a healthy replica, and
// prints the report. Exit 0 when the store is (or was made) fully
// healthy, 1 on a setup error, 3 when objects remain unrecoverable —
// those were quarantined, so the next sweep re-simulates them.
func runRepair(dir, mirror string) int {
	st, err := resultstore.Open(resultstore.Options{Dir: dir, Mirror: mirror})
	if err != nil {
		return fatalf("open store: %v", err)
	}
	defer st.Close()
	rep := st.Repair()
	fmt.Printf("store %s", dir)
	if mirror != "" {
		fmt.Printf(" (mirror %s)", mirror)
	}
	fmt.Printf(": %d objects checked, %d healthy, %d legacy, %d repaired\n",
		rep.Checked, rep.Healthy, rep.Legacy, rep.Repaired)
	for _, d := range rep.Damaged {
		fmt.Printf("damaged: %s\n", d)
	}
	for _, u := range rep.Unrecoverable {
		fmt.Printf("unrecoverable (quarantined, will re-simulate): %s\n", u)
	}
	if len(rep.Unrecoverable) > 0 || len(rep.Damaged) > 0 {
		return 3
	}
	return 0
}

func fatalf(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "vtbench: "+format+"\n", args...)
	return 1
}
