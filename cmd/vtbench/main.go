// Command vtbench regenerates the paper's evaluation: every table and
// figure has a named experiment that runs the required simulations and
// prints the corresponding rows/series.
//
// Usage:
//
//	vtbench                    # run everything (takes minutes)
//	vtbench -run fig-speedup   # one experiment
//	vtbench -list              # list experiments
//	vtbench -dilute 10         # shrink grids 10x for a quick pass
//	vtbench -json BENCH_engine.json   # per-experiment wall time + simcycles/s
//	vtbench -cpuprofile cpu.pprof     # profile, labeled by experiment/workload/variant
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	vtsim "repro"
	"repro/internal/stats"
)

// expReport is one experiment's row in the -json output.
type expReport struct {
	ID              string  `json:"id"`
	WallSeconds     float64 `json:"wall_seconds"`
	RunsRequested   int     `json:"runs_requested"`
	RunsExecuted    int     `json:"runs_executed"`
	CacheHits       int     `json:"cache_hits"`
	SimCycles       int64   `json:"sim_cycles"`
	SimCyclesPerSec float64 `json:"simcycles_per_sec"`
}

// benchReport is the top-level -json document.
type benchReport struct {
	Date            string      `json:"date"`
	GoVersion       string      `json:"go_version"`
	GOMAXPROCS      int         `json:"gomaxprocs"`
	Scale           int         `json:"scale"`
	Dilute          int         `json:"dilute"`
	Workers         int         `json:"workers"`
	TotalWallSec    float64     `json:"total_wall_seconds"`
	RunsRequested   int         `json:"runs_requested"`
	RunsExecuted    int         `json:"runs_executed"`
	CacheHits       int         `json:"cache_hits"`
	SimCycles       int64       `json:"sim_cycles"`
	SimCyclesPerSec float64     `json:"simcycles_per_sec"`
	Experiments     []expReport `json:"experiments"`
}

func main() {
	var (
		run        = flag.String("run", "all", "experiment ID or \"all\"")
		scale      = flag.Int("scale", 1, "grid size multiplier")
		dilute     = flag.Int("dilute", 1, "divide grid sizes by this factor (quick passes)")
		workers    = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		out        = flag.String("out", "", "write output to file instead of stdout")
		csvDir     = flag.String("csv", "", "also write every table as CSV into this directory")
		jsonPath   = flag.String("json", "", "write per-experiment wall time and simcycles/s to this file")
		cacheDir   = flag.String("cachedir", "", "persist memoized run results in this directory across invocations")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		list       = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range vtsim.Experiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatalf("%v", err)
		}
		stats.SetCSVDir(*csvDir)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	p := vtsim.DefaultExperimentParams()
	p.Scale = *scale
	p.Dilute = *dilute
	p.Workers = *workers
	p.CacheDir = *cacheDir

	var todo []vtsim.Experiment
	if *run == "all" {
		todo = vtsim.Experiments()
	} else {
		e, err := vtsim.GetExperiment(*run)
		if err != nil {
			fatalf("%v", err)
		}
		todo = []vtsim.Experiment{e}
	}

	report := benchReport{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      *scale,
		Dilute:     *dilute,
		Workers:    *workers,
	}
	start := time.Now()
	for _, e := range todo {
		if *run == "all" {
			fmt.Fprintf(w, "### %s — %s\n", e.ID, e.Title)
			if e.Paper != "" {
				fmt.Fprintf(w, "paper: %s\n\n", e.Paper)
			}
		}
		before := vtsim.ExperimentMetrics()
		t0 := time.Now()
		if err := vtsim.RunExperiment(e.ID, p, w); err != nil {
			fatalf("%s: %v", e.ID, err)
		}
		wall := time.Since(t0).Seconds()
		m := vtsim.ExperimentMetrics()
		r := expReport{
			ID:            e.ID,
			WallSeconds:   wall,
			RunsRequested: m.Requests - before.Requests,
			RunsExecuted:  m.Executed - before.Executed,
			CacheHits:     m.CacheHits - before.CacheHits,
			SimCycles:     m.SimCycles - before.SimCycles,
		}
		if wall > 0 {
			r.SimCyclesPerSec = float64(r.SimCycles) / wall
		}
		report.Experiments = append(report.Experiments, r)
	}
	report.TotalWallSec = time.Since(start).Seconds()
	m := vtsim.ExperimentMetrics()
	report.RunsRequested = m.Requests
	report.RunsExecuted = m.Executed
	report.CacheHits = m.CacheHits
	report.SimCycles = m.SimCycles
	if report.TotalWallSec > 0 {
		report.SimCyclesPerSec = float64(m.SimCycles) / report.TotalWallSec
	}
	fmt.Fprintf(w, "total wall time: %s\n", time.Duration(report.TotalWallSec*float64(time.Second)).Round(time.Millisecond))

	if *jsonPath != "" {
		b, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fatalf("json: %v", err)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			fatalf("json: %v", err)
		}
		fmt.Fprintf(os.Stderr, "vtbench: wrote %s\n", *jsonPath)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("memprofile: %v", err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vtbench: "+format+"\n", args...)
	os.Exit(1)
}
