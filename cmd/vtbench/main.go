// Command vtbench regenerates the paper's evaluation: every table and
// figure has a named experiment that runs the required simulations and
// prints the corresponding rows/series.
//
// Usage:
//
//	vtbench                    # run everything (takes minutes)
//	vtbench -run fig-speedup   # one experiment
//	vtbench -list              # list experiments
//	vtbench -dilute 10         # shrink grids 10x for a quick pass
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	vtsim "repro"
	"repro/internal/stats"
)

func main() {
	var (
		run     = flag.String("run", "all", "experiment ID or \"all\"")
		scale   = flag.Int("scale", 1, "grid size multiplier")
		dilute  = flag.Int("dilute", 1, "divide grid sizes by this factor (quick passes)")
		workers = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		out     = flag.String("out", "", "write output to file instead of stdout")
		csvDir  = flag.String("csv", "", "also write every table as CSV into this directory")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range vtsim.Experiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatalf("%v", err)
		}
		stats.SetCSVDir(*csvDir)
	}

	p := vtsim.DefaultExperimentParams()
	p.Scale = *scale
	p.Dilute = *dilute
	p.Workers = *workers

	start := time.Now()
	var err error
	if *run == "all" {
		err = vtsim.RunAllExperiments(p, w)
	} else {
		err = vtsim.RunExperiment(*run, p, w)
	}
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(w, "total wall time: %s\n", time.Since(start).Round(time.Millisecond))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vtbench: "+format+"\n", args...)
	os.Exit(1)
}
