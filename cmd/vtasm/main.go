// Command vtasm assembles a .vta kernel file and either runs it on the
// simulated GPU or disassembles/validates it.
//
// Usage:
//
//	vtasm kernel.vta -grid 64 -block 128 -param 0x100000 -param 0x200000
//	vtasm -check kernel.vta          # assemble only, report resources
//	vtasm -disasm kernel.vta         # round-trip through the disassembler
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	vtsim "repro"
	"repro/internal/asm"
	"repro/internal/cta"
	"repro/internal/isa"
)

type paramList []uint32

func (p *paramList) String() string { return fmt.Sprint(*p) }
func (p *paramList) Set(s string) error {
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return err
	}
	*p = append(*p, uint32(v))
	return nil
}

func main() {
	var (
		grid   = flag.Int("grid", 60, "grid size (CTAs)")
		block  = flag.Int("block", 128, "threads per CTA")
		policy = flag.String("policy", "baseline", "baseline | vt | ideal | fullswap")
		check  = flag.Bool("check", false, "assemble and report resources only")
		disasm = flag.Bool("disasm", false, "assemble then print the disassembly")
		params paramList
	)
	flag.Var(&params, "param", "kernel parameter (repeatable, accepts 0x)")
	flag.Parse()

	if flag.NArg() != 1 {
		fatalf("usage: vtasm [flags] kernel.vta")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	k, err := asm.Assemble(string(src))
	if err != nil {
		fatalf("%v", err)
	}

	if *disasm {
		fmt.Print(asm.Disassemble(k))
		return
	}

	cfg := vtsim.GTX480()
	switch strings.ToLower(*policy) {
	case "baseline":
	case "vt":
		cfg.Policy = vtsim.PolicyVT
	case "ideal":
		cfg.Policy = vtsim.PolicyIdeal
	case "fullswap":
		cfg.Policy = vtsim.PolicyFullSwap
	default:
		fatalf("unknown policy %q", *policy)
	}

	l := &isa.Launch{
		Kernel:   k,
		GridDim:  isa.Dim1(*grid),
		BlockDim: isa.Dim1(*block),
		Params:   params,
	}
	if err := l.Validate(); err != nil {
		fatalf("%v", err)
	}

	o := cta.ComputeOccupancy(l, &cfg)
	fmt.Printf("kernel %s: %d instructions, %d regs/thread, %d B shared\n",
		k.Name, len(k.Code), k.NumRegs, k.SMemBytes)
	fmt.Printf("occupancy: %d CTAs/SM (limiter %s; capacity %d)\n",
		o.CTAs, o.Limiter, o.CapacityCTAs)
	if *check {
		return
	}

	res, err := vtsim.RunLaunch(l, cfg, nil, nil)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("policy %s: %d cycles, IPC %.3f, active warps/SM %.1f (resident %.1f)\n",
		res.Policy, res.Cycles, res.IPC(), res.AvgActiveWarpsPerSM(), res.AvgResidentWarpsPerSM())
	if res.VT.SwapsOut > 0 {
		fmt.Printf("VT: %d swaps, context peak %d B\n", res.VT.SwapsOut, res.VT.ContextPeak)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vtasm: "+format+"\n", args...)
	os.Exit(1)
}
