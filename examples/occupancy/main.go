// Occupancy: the paper's motivating analysis. For every workload in the
// suite, report which hardware limit caps its concurrency on a Fermi-class
// SM and how much thread-level parallelism the scheduling structures
// strand — the headroom Virtual Thread exploits.
package main

import (
	"fmt"

	vtsim "repro"
	"repro/internal/cta"
)

func main() {
	cfg := vtsim.GTX480()
	fmt.Printf("occupancy analysis on %s (%d CTA slots, %d warp slots, %d KB registers, %d KB shared)\n\n",
		cfg.Name, cfg.MaxCTAsPerSM, cfg.MaxWarpsPerSM, cfg.RegFileSize*4/1024, cfg.SharedMemPerSM/1024)
	fmt.Printf("%-12s %-11s %9s %14s %10s\n", "workload", "limiter", "CTAs/SM", "capacity-CTAs", "stranded")

	schedLimited := 0
	for _, w := range vtsim.Suite(1) {
		o := cta.ComputeOccupancy(w.Launch, &cfg)
		stranded := 0.0
		if o.CapacityCTAs > o.CTAs {
			stranded = 1 - float64(o.CTAs)/float64(o.CapacityCTAs)
		}
		if o.SchedulingLimited() {
			schedLimited++
		}
		fmt.Printf("%-12s %-11s %9d %14d %9.0f%%\n",
			w.Name, o.Limiter, o.CTAs, o.CapacityCTAs, stranded*100)
	}
	fmt.Printf("\n%d of %d workloads are scheduling-limited — the paper's motivation:\n",
		schedLimited, len(vtsim.WorkloadNames()))
	fmt.Println("their registers and shared memory could host more CTAs than the")
	fmt.Println("PCs/SIMT stacks allow, which is exactly the state Virtual Thread virtualizes.")
}
