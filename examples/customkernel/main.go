// Customkernel: write a kernel in the textual assembly, assemble it, and
// compare it under the baseline and Virtual Thread policies — the workflow
// for studying your own workload's interaction with CTA virtualization.
package main

import (
	"fmt"
	"log"

	vtsim "repro"
	"repro/internal/asm"
	"repro/internal/isa"
)

// A block-chase kernel: tiny CTAs (CTA-slot limited) whose warps hop
// between cache-resident blocks. The hop address is warp-uniform (the
// loads stay coalesced) but the loop condition depends on the loaded
// value, so every iteration stalls for a full memory round trip — the
// workload class where Virtual Thread shines.
const src = `
.kernel chase
  s2r       r0, %ctaid.x
  shl       r2, r0, #7       ; per-CTA starting block
  s2r       r1, %tid.x
  shl       r1, r1, #2       ; lane offset within the block
  mov       r3, #0           ; acc
  mov       r4, #0           ; i
loop:
  ldparam   r6, p0
  iadd      r7, r6, r2
  iadd      r7, r7, r1
  ld.global r5, [r7]         ; coalesced block read
  iadd      r3, r3, r5
  ; next block: warp-uniform xorshift of the block cursor
  shl       r8, r2, #5
  xor       r2, r2, r8
  shr       r8, r2, #11
  xor       r2, r2, r8
  and       r2, r2, #0x3FF80 ; stay inside a 256 KiB window, line aligned
  ; the loop condition depends on the loaded value: a real stall per hop
  and       r9, r5, #0
  iadd      r9, r9, r4
  iadd      r4, r4, #1
  setp.lt   r10, r9, #23
  bra       r10, loop, done
done:
  s2r       r0, %ctaid.x
  s2r       r6, %ntid.x
  imul      r0, r0, r6
  s2r       r6, %tid.x
  iadd      r0, r0, r6
  shl       r0, r0, #2
  ldparam   r8, p1
  iadd      r8, r8, r0
  st.global [r8], r3
  exit
`

func main() {
	k, err := asm.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	launch := func() *isa.Launch {
		return &isa.Launch{
			Kernel:   k,
			GridDim:  isa.Dim1(480),
			BlockDim: isa.Dim1(64),
			Params:   []uint32{0x0100_0000, 0x0200_0000},
		}
	}

	base, err := vtsim.RunLaunch(launch(), vtsim.GTX480(), nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	vt, err := vtsim.RunLaunch(launch(), vtsim.GTX480().WithPolicy(vtsim.PolicyVT), nil, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("kernel %q: %d instructions, %d regs/thread\n", k.Name, len(k.Code), k.NumRegs)
	fmt.Printf("baseline: %7d cycles (IPC %5.2f, %4.1f active warps/SM)\n",
		base.Cycles, base.IPC(), base.AvgActiveWarpsPerSM())
	fmt.Printf("vt:       %7d cycles (IPC %5.2f, %4.1f resident warps/SM, %d swaps)\n",
		vt.Cycles, vt.IPC(), vt.AvgResidentWarpsPerSM(), vt.VT.SwapsOut)
	fmt.Printf("speedup:  %.2fx\n", float64(base.Cycles)/float64(vt.Cycles))
}
