// Swaptrace: watch the Virtual Thread controller work. Runs a
// scheduling-limited workload on a single SM and prints the CTA state
// transitions (activation, swap-out on memory stall, reactivation) plus a
// per-CTA lifecycle summary.
package main

import (
	"fmt"
	"log"

	vtsim "repro"
)

func main() {
	cfg := vtsim.GTX480().WithPolicy(vtsim.PolicyVT)
	cfg.NumSMs = 1 // one SM keeps the timeline readable

	w, err := vtsim.BuildWorkload("bfs", 1)
	if err != nil {
		log.Fatal(err)
	}
	// A handful of CTAs is enough to see the rotation.
	w.Launch.GridDim.X = 24

	type life struct{ activations, swaps int }
	lives := map[int]*life{}
	var events []vtsim.TraceEvent

	res, err := vtsim.RunTraced(w, cfg, func(e vtsim.TraceEvent) {
		events = append(events, e)
		l := lives[e.CTA]
		if l == nil {
			l = &life{}
			lives[e.CTA] = l
		}
		switch e.To.String() {
		case "active", "restoring":
			l.activations++
		case "inactive-waiting", "inactive-ready":
			l.swaps++
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("timeline (first 40 of %d transitions):\n", len(events))
	for i, e := range events {
		if i == 40 {
			break
		}
		fmt.Printf("  cycle %6d  CTA %2d  %-16s -> %s\n", e.Cycle, e.CTA, e.From, e.To)
	}

	fmt.Printf("\nper-CTA lifecycle:\n")
	for id := 0; id < w.Launch.GridDim.X; id++ {
		if l := lives[id]; l != nil {
			fmt.Printf("  CTA %2d: %d activations, %d swap-outs\n", id, l.activations, l.swaps)
		}
	}
	fmt.Printf("\ntotals: %d swap-outs, %d swap-ins over %d cycles (active %.1f / resident %.1f warps)\n",
		res.VT.SwapsOut, res.VT.SwapsIn, res.Cycles,
		res.AvgActiveWarpsPerSM(), res.AvgResidentWarpsPerSM())
}
