// Sweep: a miniature sensitivity study over the Virtual Thread swap
// latency, showing where the mechanism's benefit erodes — the insight
// behind the paper's claim that keeping register/shared-memory state
// on-chip (tiny swaps) is what makes CTA virtualization profitable.
package main

import (
	"fmt"
	"log"

	vtsim "repro"
)

func main() {
	const workload = "pathfinder"

	base, err := run(workload, func(c *vtsim.Config) {})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s baseline: %d cycles\n\n", workload, base.Cycles)
	fmt.Printf("%-14s %10s %10s %8s\n", "swap latency", "cycles", "speedup", "swaps")

	for _, lat := range []int{0, 8, 24, 64, 128, 256, 512, 1024} {
		lat := lat
		res, err := run(workload, func(c *vtsim.Config) {
			c.Policy = vtsim.PolicyVT
			c.VT.SwapOutLatency = lat
			c.VT.SwapInLatency = lat
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14d %10d %9.2fx %8d\n",
			lat, res.Cycles, float64(base.Cycles)/float64(res.Cycles), res.VT.SwapsOut)
	}
	fmt.Println("\nThe default (8-cycle) swap only moves PCs and SIMT stacks; the large")
	fmt.Println("latencies emulate progressively heavier context motion, degrading toward")
	fmt.Println("(and past) the baseline — the FullSwap strawman's regime.")
}

func run(name string, mutate func(*vtsim.Config)) (*vtsim.Result, error) {
	w, err := vtsim.BuildWorkload(name, 1)
	if err != nil {
		return nil, err
	}
	cfg := vtsim.GTX480()
	mutate(&cfg)
	return vtsim.Run(w, cfg)
}
