// Quickstart: simulate one workload under the baseline and Virtual Thread
// policies and compare. This is the 30-second tour of the public API.
package main

import (
	"fmt"
	"log"

	vtsim "repro"
)

func main() {
	// The paper's hardware: a Fermi-class GPU whose per-SM scheduling
	// structures allow 8 CTAs / 48 warps while the register file and
	// shared memory could often hold far more.
	cfg := vtsim.GTX480()

	// A scheduling-limited workload: 32-thread CTAs mean the 8-CTA slot
	// limit strands two thirds of the SM's capacity.
	w, err := vtsim.BuildWorkload("nw", 1)
	if err != nil {
		log.Fatal(err)
	}

	base, err := vtsim.Run(w, cfg)
	if err != nil {
		log.Fatal(err)
	}

	w2, _ := vtsim.BuildWorkload("nw", 1)
	vt, err := vtsim.Run(w2, cfg.WithPolicy(vtsim.PolicyVT))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s — %s\n\n", w.Name, w.Description)
	fmt.Printf("%-22s %12s %12s\n", "", "baseline", "virtual-thread")
	fmt.Printf("%-22s %12d %12d\n", "cycles", base.Cycles, vt.Cycles)
	fmt.Printf("%-22s %12.2f %12.2f\n", "IPC", base.IPC(), vt.IPC())
	fmt.Printf("%-22s %12.1f %12.1f\n", "active warps/SM", base.AvgActiveWarpsPerSM(), vt.AvgActiveWarpsPerSM())
	fmt.Printf("%-22s %12.1f %12.1f\n", "resident warps/SM", base.AvgResidentWarpsPerSM(), vt.AvgResidentWarpsPerSM())
	fmt.Printf("%-22s %12s %12d\n", "CTA swaps", "-", vt.VT.SwapsOut)
	fmt.Printf("\nspeedup: %.2fx (VT keeps %d CTAs resident per SM against a scheduling limit of %d)\n",
		float64(base.Cycles)/float64(vt.Cycles), vt.VT.MaxResident, cfg.MaxCTAsPerSM)
}
