// Multikernel: concurrent kernel execution under Virtual Thread. A
// latency-bound wavefront kernel (nw) is co-scheduled with a compute-bound
// one (montecarlo); each gets a disjoint memory arena. VT rotates the
// stalled wavefront CTAs while the compute CTAs keep the pipelines fed.
package main

import (
	"fmt"
	"log"

	vtsim "repro"
)

func main() {
	names := []string{"nw", "montecarlo"}

	base, err := vtsim.RunConcurrentNames(names, 1, vtsim.GTX480())
	if err != nil {
		log.Fatal(err)
	}
	vt, err := vtsim.RunConcurrentNames(names, 1, vtsim.GTX480().WithPolicy(vtsim.PolicyVT))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("co-scheduled mix: %s\n\n", base.Kernel)
	fmt.Printf("%-22s %12s %12s\n", "", "baseline", "virtual-thread")
	fmt.Printf("%-22s %12d %12d\n", "cycles", base.Cycles, vt.Cycles)
	fmt.Printf("%-22s %12.2f %12.2f\n", "IPC", base.IPC(), vt.IPC())
	fmt.Printf("%-22s %12.1f %12.1f\n", "resident warps/SM",
		base.AvgResidentWarpsPerSM(), vt.AvgResidentWarpsPerSM())
	fmt.Printf("%-22s %12s %12d\n", "CTA swaps", "-", vt.VT.SwapsOut)
	fmt.Println()
	for i := range base.PerKernel {
		fmt.Printf("  %-12s issued %9d (baseline) vs %9d (vt) warp instructions\n",
			base.PerKernel[i].Name, base.PerKernel[i].Issued, vt.PerKernel[i].Issued)
	}
	fmt.Printf("\nmix speedup: %.2fx — CTA virtualization applies unchanged when\n",
		float64(base.Cycles)/float64(vt.Cycles))
	fmt.Println("kernels share the SMs: inactive CTAs of either kernel park in the")
	fmt.Println("context buffer while any ready CTA (from either grid) takes the slots.")
}
