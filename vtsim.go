// Package vtsim is the public API of the Virtual Thread reproduction: a
// cycle-level GPU simulator with baseline, Virtual Thread (ISCA 2016),
// ideal, and full-swap CTA scheduling policies, a 14-kernel synthetic
// workload suite, and the experiment harness that regenerates every table
// and figure of the paper's evaluation.
//
// Quick start:
//
//	cfg := vtsim.GTX480().WithPolicy(vtsim.PolicyVT)
//	w, _ := vtsim.BuildWorkload("bfs", 1)
//	res, _ := vtsim.Run(w, cfg)
//	fmt.Println(res.IPC(), res.VT.SwapsOut)
//
// The deeper layers remain importable inside this module: internal/isa to
// assemble custom kernels, internal/gpu for raw launches, internal/core
// for the VT controller itself.
package vtsim

import (
	"io"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/telemetry"
)

// Config is the hardware description of the simulated GPU.
type Config = config.GPUConfig

// Policy selects the CTA scheduling architecture.
type Policy = config.Policy

// CTA scheduling policies.
const (
	PolicyBaseline = config.PolicyBaseline
	PolicyVT       = config.PolicyVT
	PolicyIdeal    = config.PolicyIdeal
	PolicyFullSwap = config.PolicyFullSwap
)

// Warp scheduler kinds.
const (
	SchedGTO = config.SchedGTO
	SchedLRR = config.SchedLRR
)

// GTX480 returns the paper's Fermi-class hardware configuration.
func GTX480() Config { return config.GTX480() }

// SmallConfig returns a scaled-down configuration for experimentation.
func SmallConfig() Config { return config.Small() }

// Workload is a benchmark instance from the synthetic suite.
type Workload = kernels.Workload

// Result is the outcome of one simulation.
type Result = gpu.Result

// VTStats are the Virtual Thread controller counters in a Result.
type VTStats = core.Stats

// Launch binds a kernel to its grid; build custom kernels with
// internal/isa's Builder.
type Launch = isa.Launch

// Backing is the functional global-memory contents.
type Backing = mem.Backing

// WorkloadNames lists the synthetic suite in evaluation order.
func WorkloadNames() []string { return kernels.Names() }

// BuildWorkload constructs a suite workload at the given grid scale
// (1 = evaluation size).
func BuildWorkload(name string, scale int) (Workload, error) {
	return kernels.Build(name, scale)
}

// Suite returns every suite workload at the given scale.
func Suite(scale int) []Workload { return kernels.Suite(scale) }

// Run simulates a suite workload on the configured GPU.
func Run(w Workload, cfg Config) (*Result, error) {
	return gpu.Run(w.Launch, cfg, gpu.Options{InitMemory: w.Init})
}

// RunLaunch simulates an arbitrary launch, optionally preloading global
// memory and receiving it back after the run.
func RunLaunch(l *Launch, cfg Config, init func(*Backing), keep func(*Backing)) (*Result, error) {
	return gpu.Run(l, cfg, gpu.Options{InitMemory: init, KeepBacking: keep})
}

// TraceEvent is a Virtual Thread CTA state transition.
type TraceEvent = core.TraceEvent

// RunTraced simulates a workload under a VT policy, streaming CTA state
// transitions to trace.
func RunTraced(w Workload, cfg Config, trace func(TraceEvent)) (*Result, error) {
	return gpu.Run(w.Launch, cfg, gpu.Options{InitMemory: w.Init, Trace: trace})
}

// Experiment is one reproducible table or figure of the evaluation.
type Experiment = harness.Experiment

// ExperimentParams configure a harness run.
type ExperimentParams = harness.Params

// DefaultExperimentParams returns the evaluation defaults (full GTX 480,
// scale 1).
func DefaultExperimentParams() ExperimentParams { return harness.DefaultParams() }

// Experiments returns every experiment in paper order.
func Experiments() []Experiment { return harness.Experiments() }

// GetExperiment returns the experiment with the given ID.
func GetExperiment(id string) (Experiment, error) { return harness.Get(id) }

// RunExperiment executes one experiment by ID, writing its tables to w.
func RunExperiment(id string, p ExperimentParams, w io.Writer) error {
	e, err := harness.Get(id)
	if err != nil {
		return err
	}
	return harness.RunOne(e, p, w)
}

// RunMetrics counts the simulation work the harness has performed: how
// many runs experiments requested, how many gpu.Run calls actually
// executed (the rest were memo-cache hits), and the simulated cycles of
// the executed runs.
type RunMetrics = harness.RunMetrics

// ExperimentMetrics snapshots the harness work counters.
func ExperimentMetrics() RunMetrics { return harness.Metrics() }

// ResetExperimentMetrics zeroes the work counters and empties the
// harness memo cache.
func ResetExperimentMetrics() { harness.ResetMetrics() }

// RunAllExperiments regenerates every table and figure.
func RunAllExperiments(p ExperimentParams, w io.Writer) error {
	return harness.RunAll(p, w)
}

// RunSampled simulates a suite workload, recording an occupancy/IPC sample
// every sampleInterval cycles into Result.Timeline (0 disables sampling).
func RunSampled(w Workload, cfg Config, sampleInterval int64) (*Result, error) {
	return gpu.Run(w.Launch, cfg, gpu.Options{
		InitMemory:     w.Init,
		SampleInterval: sampleInterval,
	})
}

// BuildWorkloadAt constructs a suite workload with its buffers in the
// given memory arena; concurrent runs must give each kernel a disjoint
// arena (DefaultArena + k*ArenaStride).
func BuildWorkloadAt(name string, scale int, arena uint32) (Workload, error) {
	return kernels.BuildAt(name, scale, arena)
}

// Arena layout constants for BuildWorkloadAt.
const (
	DefaultArena = kernels.DefaultArena
	ArenaStride  = kernels.ArenaStride
)

// RunConcurrentNames simulates the named suite workloads executing
// concurrently on one GPU (concurrent kernel execution), giving each a
// disjoint memory arena. The dispatcher interleaves their CTAs across
// SMs, and under VT inactive CTAs of different kernels share each SM's
// capacity. Result.PerKernel reports per-launch counts.
func RunConcurrentNames(names []string, scale int, cfg Config) (*Result, error) {
	launches := make([]*isa.Launch, len(names))
	inits := make([]func(*Backing), 0, len(names))
	for i, n := range names {
		w, err := kernels.BuildAt(n, scale, uint32(kernels.DefaultArena+i*kernels.ArenaStride))
		if err != nil {
			return nil, err
		}
		launches[i] = w.Launch
		if w.Init != nil {
			inits = append(inits, w.Init)
		}
	}
	return gpu.RunMulti(launches, cfg, gpu.Options{
		InitMemory: func(b *Backing) {
			for _, init := range inits {
				init(b)
			}
		},
	})
}

// Collector gathers per-window metric rings, lifecycle spans, and the
// Perfetto timeline of one run; see internal/telemetry.
type Collector = telemetry.Collector

// TelemetryConfig sizes a Collector (zero value = defaults).
type TelemetryConfig = telemetry.Config

// NewCollector returns a telemetry collector to pass to RunCollected.
func NewCollector(cfg TelemetryConfig) *Collector { return telemetry.NewCollector(cfg) }

// RunCollected simulates a suite workload with the telemetry collector
// attached (and optionally a VT trace callback and occupancy sampling).
// The collector is a pure observer: the Result is bit-identical to an
// uncollected run. Read col.Dump() or col.WritePerfetto() afterwards.
func RunCollected(w Workload, cfg Config, sampleInterval int64, trace func(TraceEvent), col *Collector) (*Result, error) {
	return gpu.Run(w.Launch, cfg, gpu.Options{
		InitMemory:     w.Init,
		Trace:          trace,
		SampleInterval: sampleInterval,
		Telemetry:      col,
	})
}

// RunTracedSampled combines RunTraced and RunSampled: VT state transitions
// stream to trace while the occupancy timeline is recorded.
func RunTracedSampled(w Workload, cfg Config, sampleInterval int64, trace func(TraceEvent)) (*Result, error) {
	return gpu.Run(w.Launch, cfg, gpu.Options{
		InitMemory:     w.Init,
		Trace:          trace,
		SampleInterval: sampleInterval,
	})
}
